(* Tests for the Multiple-CE Builder: PE distribution, parallelism
   selection, tiling arithmetic and buffer allocation. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let res50 = Cnn.Model_zoo.resnet50 ()
let mobv2 = Cnn.Model_zoo.mobilenet_v2 ()

(* ---------------------------------------------------- Pe_allocation *)

let test_pe_distribute_sum () =
  let pes = Builder.Pe_allocation.distribute ~budget:900 ~workloads:[| 3; 1; 1 |] in
  check "spends budget" 900 (Array.fold_left ( + ) 0 pes);
  checkb "proportional" true (pes.(0) > pes.(1))

let test_pe_distribute_minimum () =
  let pes =
    Builder.Pe_allocation.distribute ~budget:10 ~workloads:[| 1000000; 0; 1 |]
  in
  Array.iter (fun p -> checkb "at least 1" true (p >= 1)) pes;
  check "sum" 10 (Array.fold_left ( + ) 0 pes)

let test_pe_distribute_equal () =
  let pes = Builder.Pe_allocation.distribute ~budget:9 ~workloads:[| 5; 5; 5 |] in
  Alcotest.(check (array int)) "equal thirds" [| 3; 3; 3 |] pes

let test_pe_distribute_invalid () =
  Alcotest.check_raises "budget too small"
    (Invalid_argument
       "Pe_allocation.distribute: budget 2 cannot give 3 engines a PE")
    (fun () ->
      ignore (Builder.Pe_allocation.distribute ~budget:2 ~workloads:[| 1; 1; 1 |]))

(* ------------------------------------------------ Parallelism_select *)

let test_smooth_degree () =
  check "900 is smooth" 900 (Builder.Parallelism_select.smooth_degree 900);
  check "899 -> 896" 896 (Builder.Parallelism_select.smooth_degree 899);
  check "1 -> 1" 1 (Builder.Parallelism_select.smooth_degree 1);
  (* 2521 is prime-ish; whatever comes back must be 7-smooth and <= n. *)
  let d = Builder.Parallelism_select.smooth_degree 2521 in
  checkb "<= n" true (d <= 2521);
  let rec strip n p = if n mod p = 0 then strip (n / p) p else n in
  check "7-smooth" 1 (strip (strip (strip (strip d 2) 3) 5) 7)

let test_choose_degree_within_budget () =
  let layers = Cnn.Model.layers_in_range res50 ~first:0 ~last:9 in
  List.iter
    (fun pes ->
      let p = Builder.Parallelism_select.choose ~pes ~layers in
      checkb
        (Printf.sprintf "degree <= %d" pes)
        true
        (Engine.Parallelism.degree p <= pes))
    [ 1; 7; 64; 450; 900; 2520 ]

let test_choose_depthwise_uses_channels () =
  let dw_layers =
    List.filter
      (fun (l : Cnn.Layer.t) -> l.Cnn.Layer.kind = Cnn.Layer.Depthwise)
      (Cnn.Model.layers_in_range mobv2 ~first:0
         ~last:(Cnn.Model.num_layers mobv2 - 1))
  in
  let p = Builder.Parallelism_select.choose ~pes:256 ~layers:dw_layers in
  check "no filter unrolling" 1
    (Engine.Parallelism.factor p Engine.Parallelism.Filters);
  checkb "channels unrolled" true
    (Engine.Parallelism.factor p Engine.Parallelism.Channels > 1)

let test_choose_beats_naive () =
  (* The chosen strategy should be at least as good as a naive square
     strategy of the same budget. *)
  let layers = Cnn.Model.layers_in_range res50 ~first:10 ~last:30 in
  let pes = 512 in
  let chosen = Builder.Parallelism_select.choose ~pes ~layers in
  let naive = Engine.Parallelism.three_d ~filters:8 ~height:8 ~width:8 in
  let cycles p =
    let ce =
      Engine.Ce.v ~id:1 ~pes ~parallelism:p
        ~dataflow:Engine.Dataflow.Output_stationary
    in
    List.fold_left (fun a l -> a + Engine.Ce.layer_cycles ce l) 0 layers
  in
  checkb "chosen <= naive" true (cycles chosen <= cycles naive)

(* ----------------------------------------------------------- Tiling *)

let test_weight_tile () =
  let l = Cnn.Model.layer res50 10 in
  let ce =
    Engine.Ce.v ~id:1 ~pes:64
      ~parallelism:(Engine.Parallelism.three_d ~filters:16 ~height:2 ~width:2)
      ~dataflow:Engine.Dataflow.Output_stationary
  in
  let tile = Builder.Tiling.weight_tile_elements ce l in
  let total = Cnn.Layer.weight_elements l in
  checkb "tile <= total" true (tile <= total);
  checkb "tile >= filters share" true (tile * Cnn.Layer.loop_extent l `Filters >= total)

let test_fm_tile_rows () =
  let l = Cnn.Model.layer res50 0 in
  let o = Cnn.Layer.out_shape l in
  check "4 tiles" (Util.Int_math.ceil_div o.Cnn.Shape.height 4)
    (Builder.Tiling.tile_rows l ~tiles:4);
  check "tiles count" 4
    (Builder.Tiling.num_row_tiles l ~rows:(Builder.Tiling.tile_rows l ~tiles:4))

let test_ifm_rows_for_ofm_rows () =
  let l = Cnn.Model.layer res50 0 in
  (* stride 2, kernel 7: one OFM row needs 7 IFM rows. *)
  check "one row" 7 (Builder.Tiling.ifm_rows_for_ofm_rows l ~rows:1);
  check "two rows" 9 (Builder.Tiling.ifm_rows_for_ofm_rows l ~rows:2)

let test_producer_tile () =
  check "same counts" 3
    (Builder.Tiling.producer_tile ~producer_tiles:8 ~consumer_tiles:8 3);
  check "producer finer" 3
    (Builder.Tiling.producer_tile ~producer_tiles:8 ~consumer_tiles:4 1);
  check "producer coarser" 0
    (Builder.Tiling.producer_tile ~producer_tiles:2 ~consumer_tiles:8 1);
  check "clamped" 7
    (Builder.Tiling.producer_tile ~producer_tiles:8 ~consumer_tiles:4 3)

let test_min_fm_elements () =
  let l = Cnn.Model.layer res50 0 in
  let s = l.Cnn.Layer.in_shape and o = Cnn.Layer.out_shape l in
  checkb "min below full" true
    (Builder.Tiling.min_fm_elements l
    < Cnn.Shape.elements s + Cnn.Shape.elements o)

(* ------------------------------------------------------ Buffer_alloc *)

let built archi board = Builder.Build.build res50 board archi

let test_plan_fits_bram () =
  List.iter
    (fun board ->
      List.iter
        (fun (_, archi) ->
          let b = built archi board in
          let plan = b.Builder.Build.plan in
          if plan.Builder.Buffer_alloc.feasible then
            checkb "total <= BRAM" true
              (plan.Builder.Buffer_alloc.total_bytes
              <= board.Platform.Board.bram_bytes))
        (Arch.Baselines.all_instances res50))
    [ Platform.Board.zc706; Platform.Board.zcu102 ]

let test_plan_single_capacity_bounds () =
  let b = built (Arch.Baselines.segmented ~ces:4 res50) Platform.Board.zcu102 in
  Array.iter
    (fun bp ->
      match bp with
      | Builder.Buffer_alloc.Plan_single p ->
        checkb "capacity <= ideal" true
          (p.Builder.Buffer_alloc.fm_capacity_bytes
          <= p.Builder.Buffer_alloc.fm_ideal_bytes);
        checkb "positive staging" true
          (p.Builder.Buffer_alloc.weights_tile_bytes > 0)
      | Builder.Buffer_alloc.Plan_pipelined _ -> ())
    b.Builder.Build.plan.Builder.Buffer_alloc.block_plans

let test_plan_retention_on_big_board () =
  (* MobileNetV2's 4.4 MB of 16-bit weights fit ZCU102's BRAM: the
     allocator should retain the weights of every pipelined layer that
     would otherwise reload them (more than one tile).  Single-tile
     layers stream their weights exactly once either way. *)
  let b =
    Builder.Build.build mobv2 Platform.Board.zcu102
      (Arch.Baselines.segmented_rr ~ces:4 mobv2)
  in
  Array.iteri
    (fun bi bp ->
      match (bp, (Array.of_list b.Builder.Build.archi.Arch.Block.blocks).(bi)) with
      | Builder.Buffer_alloc.Plan_pipelined p, Arch.Block.Pipelined { first; _ } ->
        Array.iteri
          (fun i retained ->
            let layer = Cnn.Model.layer mobv2 (first + i) in
            let tiles =
              Builder.Tiling.num_row_tiles layer
                ~rows:p.Builder.Buffer_alloc.tile_rows.(i)
            in
            if tiles > 1 then checkb "multi-tile layer retained" true retained)
          p.Builder.Buffer_alloc.weights_retained
      | _ -> ())
    b.Builder.Build.plan.Builder.Buffer_alloc.block_plans

let test_plan_no_full_retention_on_small_board () =
  (* ResNet50's 47 MB of weights cannot fit ZC706's 2.4 MiB. *)
  let b = built (Arch.Baselines.segmented_rr ~ces:4 res50) Platform.Board.zc706 in
  Array.iter
    (fun bp ->
      match bp with
      | Builder.Buffer_alloc.Plan_pipelined p ->
        checkb "some streamed" true
          (Array.exists not p.Builder.Buffer_alloc.weights_retained)
      | Builder.Buffer_alloc.Plan_single _ -> ())
    b.Builder.Build.plan.Builder.Buffer_alloc.block_plans

let test_tile_rows_aligned () =
  let b = built (Arch.Baselines.segmented_rr ~ces:4 res50) Platform.Board.zcu102 in
  match
    (b.Builder.Build.blocks.(0),
     b.Builder.Build.plan.Builder.Buffer_alloc.block_plans.(0))
  with
  | ( Builder.Build.Built_pipelined { engines; first; _ },
      Builder.Buffer_alloc.Plan_pipelined p ) ->
    Array.iteri
      (fun i rows ->
        let layer = Cnn.Model.layer res50 (first + i) in
        let engine = engines.(i mod Array.length engines) in
        let par_h =
          Engine.Parallelism.factor engine.Engine.Ce.parallelism
            Engine.Parallelism.Height
        in
        let out_h = (Cnn.Layer.out_shape layer).Cnn.Shape.height in
        checkb "aligned or full" true (rows mod par_h = 0 || rows = out_h))
      p.Builder.Buffer_alloc.tile_rows
  | _ -> Alcotest.fail "expected pipelined block"

let test_audit_clean_on_baselines () =
  List.iter
    (fun board ->
      List.iter
        (fun (name, archi) ->
          let b = Builder.Build.build res50 board archi in
          match
            Builder.Buffer_alloc.audit res50 board archi b.Builder.Build.plan
          with
          | [] -> ()
          | problems ->
            Alcotest.failf "%s on %s: %s" name board.Platform.Board.name
              (String.concat "; " problems))
        (Arch.Baselines.all_instances res50))
    [ Platform.Board.zc706; Platform.Board.vcu110; Platform.Board.zcu102 ]

let test_audit_flags_corruption () =
  let archi = Arch.Baselines.segmented ~ces:4 res50 in
  let b = Builder.Build.build res50 Platform.Board.zcu102 archi in
  let plan = b.Builder.Build.plan in
  let corrupted =
    { plan with Builder.Buffer_alloc.total_bytes = plan.Builder.Buffer_alloc.total_bytes + 1 }
  in
  checkb "corruption detected" true
    (Builder.Buffer_alloc.audit res50 Platform.Board.zcu102 archi corrupted
    <> [])

(* ------------------------------------------------------------ Build *)

let test_build_engine_budget () =
  List.iter
    (fun (_, archi) ->
      let b = built archi Platform.Board.vcu108 in
      let total =
        Array.fold_left (fun a e -> a + e.Engine.Ce.pes) 0 b.Builder.Build.engines
      in
      check "spends all DSPs" 768 total)
    (Arch.Baselines.all_instances res50)

let test_build_dataflows () =
  let b = built (Arch.Baselines.hybrid ~ces:4 res50) Platform.Board.vcu108 in
  (* First ces-1 engines are pipelined (WS); the last is single (OS). *)
  let n = Array.length b.Builder.Build.engines in
  Array.iteri
    (fun i e ->
      let expected =
        if i = n - 1 then Engine.Dataflow.Output_stationary
        else Engine.Dataflow.Weight_stationary
      in
      checkb "dataflow" true (e.Engine.Ce.dataflow = expected))
    b.Builder.Build.engines

let test_engine_for_layer () =
  let b = built (Arch.Baselines.hybrid ~ces:4 res50) Platform.Board.vcu108 in
  check "layer 0 on CE1" 1 (Builder.Build.engine_for_layer b 0).Engine.Ce.id;
  check "layer 1 on CE2" 2 (Builder.Build.engine_for_layer b 1).Engine.Ce.id;
  check "layer 10 on CE4" 4 (Builder.Build.engine_for_layer b 10).Engine.Ce.id

let test_workload_assignment () =
  let a = Workload_helper.assignment () in
  Alcotest.(check (list int)) "ce0" [ 0; 3; 6 ] a.(0);
  Alcotest.(check (list int)) "ce1" [ 1; 4 ] a.(1);
  Alcotest.(check (list int)) "ce2" [ 2; 5 ] a.(2)

(* ------------------------------------------------------- properties *)

let prop_pe_distribution =
  QCheck2.Test.make ~name:"PE distribution spends budget with floor 1"
    Generators.pe_budget_workloads
    (fun (budget, workloads) ->
      QCheck2.assume (budget >= Array.length workloads);
      let pes = Builder.Pe_allocation.distribute ~budget ~workloads in
      Array.fold_left ( + ) 0 pes = budget && Array.for_all (fun p -> p >= 1) pes)

let prop_share_upper_bound =
  QCheck2.Test.make
    ~name:"distribute never exceeds share_upper_bound"
    Generators.pe_budget_workloads
    (fun (budget, workloads) ->
      QCheck2.assume (budget >= Array.length workloads);
      let engines = Array.length workloads in
      let total = Array.fold_left ( + ) 0 workloads in
      let pes = Builder.Pe_allocation.distribute ~budget ~workloads in
      let ok = ref true in
      Array.iteri
        (fun i p ->
          let ub =
            Builder.Pe_allocation.share_upper_bound ~budget ~engines
              ~workload:workloads.(i) ~total
          in
          if p > ub then ok := false)
        pes;
      !ok)

let prop_ifm_rows_monotone =
  QCheck2.Test.make ~name:"IFM rows monotone in OFM rows, never below kernel"
    QCheck2.Gen.(
      triple Generators.res50_layer_index (int_range 1 112) (int_range 1 112))
    (fun (li, r1, r2) ->
      let l = Cnn.Model.layer res50 li in
      let lo = min r1 r2 and hi = max r1 r2 in
      let a = Builder.Tiling.ifm_rows_for_ofm_rows l ~rows:lo in
      let b = Builder.Tiling.ifm_rows_for_ofm_rows l ~rows:hi in
      a <= b && a >= l.Cnn.Layer.kernel)

let prop_row_tiles_roundtrip =
  QCheck2.Test.make ~name:"tile_rows for n tiles never yields more than n"
    QCheck2.Gen.(pair Generators.res50_layer_index Generators.tile_count)
    (fun (li, n) ->
      let l = Cnn.Model.layer res50 li in
      Builder.Tiling.num_row_tiles l ~rows:(Builder.Tiling.tile_rows l ~tiles:n)
      <= n)

let prop_producer_tile_range =
  QCheck2.Test.make ~name:"producer tile stays in range"
    QCheck2.Gen.(
      triple (int_range 1 64) (int_range 1 64) (int_range 0 63))
    (fun (pt, ct, t) ->
      QCheck2.assume (t < ct);
      let p =
        Builder.Tiling.producer_tile ~producer_tiles:pt ~consumer_tiles:ct t
      in
      0 <= p && p < pt)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pe_distribution; prop_share_upper_bound; prop_ifm_rows_monotone;
      prop_row_tiles_roundtrip; prop_producer_tile_range;
    ]

let () =
  Alcotest.run "builder"
    [
      ( "pe_allocation",
        [
          Alcotest.test_case "sum" `Quick test_pe_distribute_sum;
          Alcotest.test_case "minimum" `Quick test_pe_distribute_minimum;
          Alcotest.test_case "equal" `Quick test_pe_distribute_equal;
          Alcotest.test_case "invalid" `Quick test_pe_distribute_invalid;
        ] );
      ( "parallelism_select",
        [
          Alcotest.test_case "smooth degree" `Quick test_smooth_degree;
          Alcotest.test_case "degree within budget" `Quick
            test_choose_degree_within_budget;
          Alcotest.test_case "depthwise channels" `Quick
            test_choose_depthwise_uses_channels;
          Alcotest.test_case "beats naive" `Quick test_choose_beats_naive;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "weight tile" `Quick test_weight_tile;
          Alcotest.test_case "fm tile rows" `Quick test_fm_tile_rows;
          Alcotest.test_case "ifm rows" `Quick test_ifm_rows_for_ofm_rows;
          Alcotest.test_case "producer tile" `Quick test_producer_tile;
          Alcotest.test_case "min fm" `Quick test_min_fm_elements;
        ] );
      ( "buffer_alloc",
        [
          Alcotest.test_case "fits BRAM" `Quick test_plan_fits_bram;
          Alcotest.test_case "single capacity bounds" `Quick
            test_plan_single_capacity_bounds;
          Alcotest.test_case "retention big board" `Quick
            test_plan_retention_on_big_board;
          Alcotest.test_case "no full retention small board" `Quick
            test_plan_no_full_retention_on_small_board;
          Alcotest.test_case "tile rows aligned" `Quick test_tile_rows_aligned;
          Alcotest.test_case "audit clean" `Slow test_audit_clean_on_baselines;
          Alcotest.test_case "audit flags corruption" `Quick
            test_audit_flags_corruption;
        ] );
      ( "build",
        [
          Alcotest.test_case "engine budget" `Quick test_build_engine_budget;
          Alcotest.test_case "dataflows" `Quick test_build_dataflows;
          Alcotest.test_case "engine for layer" `Quick test_engine_for_layer;
          Alcotest.test_case "workload assignment" `Quick test_workload_assignment;
        ] );
      ("properties", properties);
    ]
