(* Tests for the compression what-if analysis (Use Case 2). *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let res50 = Cnn.Model_zoo.resnet50 ()

let segrr2_breakdown () =
  (Mccm.Evaluate.evaluate res50 Platform.Board.zc706
     (Arch.Baselines.segmented_rr ~ces:2 res50))
    .Mccm.Evaluate.breakdown

let board = Platform.Board.zc706

let test_invalid_ratio () =
  let b = segrr2_breakdown () in
  Alcotest.check_raises "ratio 1.0"
    (Invalid_argument "Compression.apply: ratio must exceed 1.0") (fun () ->
      ignore
        (Mccm.Compression.apply ~board
           (Mccm.Compression.uniform_weights ~ratio:2.0
           |> fun p -> { p with Mccm.Compression.ratio = 1.0 })
           b))

let test_speedup_at_least_one () =
  let b = segrr2_breakdown () in
  List.iter
    (fun policy ->
      let o = Mccm.Compression.apply ~board policy b in
      checkb "speedup >= 1" true (o.Mccm.Compression.speedup >= 1.0 -. 1e-12);
      checkb "time does not grow" true
        (o.Mccm.Compression.compressed_time_s
        <= o.Mccm.Compression.baseline_time_s +. 1e-12))
    [
      Mccm.Compression.uniform_weights ~ratio:2.0;
      Mccm.Compression.bottleneck_weights ~ratio:2.0;
      { Mccm.Compression.target = Fms_only; ratio = 2.0;
        memory_bound_only = true };
    ]

let test_bottleneck_weights_helps_segrr () =
  (* SegmentedRR/2 on ZC706 is weight-traffic bound in its tail; the
     paper's recommended policy must yield a real speedup. *)
  let b = segrr2_breakdown () in
  let o =
    Mccm.Compression.apply ~board
      (Mccm.Compression.bottleneck_weights ~ratio:2.0)
      b
  in
  checkb "affects segments" true (o.Mccm.Compression.segments_affected > 0);
  checkb "speedup over 3%" true (o.Mccm.Compression.speedup > 1.03)

let test_fm_compression_useless_for_segrr () =
  (* Fig. 7's reading: FM compression is pure overhead for SegmentedRR. *)
  let b = segrr2_breakdown () in
  let o =
    Mccm.Compression.apply ~board
      { Mccm.Compression.target = Fms_only; ratio = 4.0;
        memory_bound_only = true }
      b
  in
  checkb "speedup below 1%" true (o.Mccm.Compression.speedup < 1.01)

let test_best_single_target_picks_weights () =
  let b = segrr2_breakdown () in
  let target, _ = Mccm.Compression.best_single_target ~board ~ratio:2.0 b in
  checkb "weights win" true (target = Mccm.Compression.Weights_only)

let test_accesses_reduced_exactly () =
  (* Uniform 2x weight compression halves weight bytes everywhere. *)
  let b = segrr2_breakdown () in
  let o =
    Mccm.Compression.apply ~board
      (Mccm.Compression.uniform_weights ~ratio:2.0)
      b
  in
  let base = o.Mccm.Compression.baseline_accesses in
  let comp = o.Mccm.Compression.compressed_accesses in
  (* Rounding per segment: allow one byte per segment of slack. *)
  let segments = List.length (segrr2_breakdown ()).Mccm.Breakdown.segments in
  checkb "weights halved" true
    (abs ((base.Mccm.Access.weights_bytes / 2) - comp.Mccm.Access.weights_bytes)
    <= segments);
  check "FM bytes untouched" base.Mccm.Access.fms_bytes
    comp.Mccm.Access.fms_bytes

let test_memory_bound_only_filter () =
  let b = segrr2_breakdown () in
  let all = Mccm.Compression.apply ~board (Mccm.Compression.uniform_weights ~ratio:2.0) b in
  let bound =
    Mccm.Compression.apply ~board (Mccm.Compression.bottleneck_weights ~ratio:2.0) b
  in
  checkb "uniform touches more segments" true
    (all.Mccm.Compression.segments_affected
    >= bound.Mccm.Compression.segments_affected);
  check "uniform touches all" (List.length b.Mccm.Breakdown.segments)
    all.Mccm.Compression.segments_affected

let test_baseline_time_matches_breakdown () =
  let b = segrr2_breakdown () in
  let o =
    Mccm.Compression.apply ~board (Mccm.Compression.uniform_weights ~ratio:2.0) b
  in
  let expect =
    List.fold_left
      (fun acc (s : Mccm.Breakdown.segment) -> acc +. s.Mccm.Breakdown.time_s)
      0.0 b.Mccm.Breakdown.segments
  in
  checkf "baseline time" expect o.Mccm.Compression.baseline_time_s

(* ------------------------------------------------------- edge cases *)

(* A 1x1-only (pointwise) network: no kernel reuse at all, so FM traffic
   dominates and the weight/FM trade-off flips relative to ResNet. *)
let pointwise_only_model () =
  let shape = Cnn.Shape.v ~channels:64 ~height:28 ~width:28 in
  let layers =
    List.init 6 (fun i ->
        Cnn.Layer.v ~index:i
          ~name:(Printf.sprintf "pw%d" (i + 1))
          ~kind:Cnn.Layer.Pointwise ~in_shape:shape ~out_channels:64 ~kernel:1
          ~stride:1 ~padding:0 ())
  in
  Cnn.Model.v ~name:"PointwiseOnly" ~abbreviation:"PwOnly" ~layers

let test_pointwise_only_model () =
  let m = pointwise_only_model () in
  let b =
    (Mccm.Evaluate.evaluate m Platform.Board.zc706
       (Arch.Baselines.segmented ~ces:2 m))
      .Mccm.Evaluate.breakdown
  in
  List.iter
    (fun policy ->
      let o = Mccm.Compression.apply ~board policy b in
      checkb "speedup >= 1" true (o.Mccm.Compression.speedup >= 1.0 -. 1e-12))
    [
      Mccm.Compression.uniform_weights ~ratio:2.0;
      Mccm.Compression.bottleneck_weights ~ratio:2.0;
      { Mccm.Compression.target = Fms_only; ratio = 2.0;
        memory_bound_only = false };
    ];
  (* The analysis must still nominate a target, whichever it is. *)
  let _target, o = Mccm.Compression.best_single_target ~board ~ratio:2.0 b in
  checkb "best target sane" true
    (o.Mccm.Compression.compressed_time_s
    <= o.Mccm.Compression.baseline_time_s +. 1e-12)

let test_zero_fm_traffic_segments () =
  (* A network small enough to keep every feature map on chip: interior
     segments move zero FM bytes, so FM compression must be an exact
     no-op on them (and division by the ratio must not manufacture
     traffic from nothing). *)
  let shape = Cnn.Shape.v ~channels:8 ~height:8 ~width:8 in
  let layers =
    List.init 4 (fun i ->
        Cnn.Layer.v ~index:i
          ~name:(Printf.sprintf "t%d" (i + 1))
          ~kind:Cnn.Layer.Pointwise ~in_shape:shape ~out_channels:8 ~kernel:1
          ~stride:1 ~padding:0 ())
  in
  let m = Cnn.Model.v ~name:"Tiny" ~abbreviation:"Tiny" ~layers in
  let b =
    (Mccm.Evaluate.evaluate m Platform.Board.vcu108
       (Arch.Baselines.segmented ~ces:2 m))
      .Mccm.Evaluate.breakdown
  in
  let o =
    Mccm.Compression.apply ~board:Platform.Board.vcu108
      { Mccm.Compression.target = Fms_only; ratio = 4.0;
        memory_bound_only = false }
      b
  in
  checkb "fm bytes do not grow" true
    (o.Mccm.Compression.compressed_accesses.Mccm.Access.fms_bytes
    <= o.Mccm.Compression.baseline_accesses.Mccm.Access.fms_bytes);
  check "weight bytes untouched"
    o.Mccm.Compression.baseline_accesses.Mccm.Access.weights_bytes
    o.Mccm.Compression.compressed_accesses.Mccm.Access.weights_bytes

let test_no_memory_bound_segments () =
  (* Fully compute-bound design: a memory-bound-only policy finds no
     segment to touch and reports an exact 1.0x speedup. *)
  let shape = Cnn.Shape.v ~channels:8 ~height:8 ~width:8 in
  let layers =
    List.init 4 (fun i ->
        Cnn.Layer.v ~index:i
          ~name:(Printf.sprintf "c%d" (i + 1))
          ~kind:Cnn.Layer.Standard ~in_shape:shape ~out_channels:8 ~kernel:3
          ~stride:1 ~padding:1 ())
  in
  let m = Cnn.Model.v ~name:"ComputeBound" ~abbreviation:"CB" ~layers in
  let b =
    (Mccm.Evaluate.evaluate m Platform.Board.vcu108
       (Arch.Baselines.segmented ~ces:2 m))
      .Mccm.Evaluate.breakdown
  in
  if Mccm.Breakdown.memory_bound_count b = 0 then begin
    let o =
      Mccm.Compression.apply ~board:Platform.Board.vcu108
        (Mccm.Compression.bottleneck_weights ~ratio:4.0)
        b
    in
    check "no segments affected" 0 o.Mccm.Compression.segments_affected;
    checkf "speedup exactly 1" 1.0 o.Mccm.Compression.speedup
  end
  else Alcotest.fail "expected a compute-bound design on VCU108"

let prop_higher_ratio_never_slower =
  QCheck2.Test.make ~name:"higher ratio never reduces the speedup" ~count:20
    QCheck2.Gen.(pair (float_range 1.1 4.0) (float_range 0.1 4.0))
    (fun (r, dr) ->
      let b = segrr2_breakdown () in
      let s ratio =
        (Mccm.Compression.apply ~board
           (Mccm.Compression.bottleneck_weights ~ratio)
           b)
          .Mccm.Compression.speedup
      in
      s (r +. dr) >= s r -. 1e-9)

let () =
  Alcotest.run "compression"
    [
      ( "apply",
        [
          Alcotest.test_case "invalid ratio" `Quick test_invalid_ratio;
          Alcotest.test_case "speedup >= 1" `Quick test_speedup_at_least_one;
          Alcotest.test_case "bottleneck weights help" `Quick
            test_bottleneck_weights_helps_segrr;
          Alcotest.test_case "FM compression useless" `Quick
            test_fm_compression_useless_for_segrr;
          Alcotest.test_case "best target" `Quick
            test_best_single_target_picks_weights;
          Alcotest.test_case "accesses reduced exactly" `Quick
            test_accesses_reduced_exactly;
          Alcotest.test_case "memory-bound filter" `Quick
            test_memory_bound_only_filter;
          Alcotest.test_case "baseline time" `Quick
            test_baseline_time_matches_breakdown;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "pointwise-only model" `Quick
            test_pointwise_only_model;
          Alcotest.test_case "zero FM-traffic segments" `Quick
            test_zero_fm_traffic_segments;
          Alcotest.test_case "no memory-bound segments" `Quick
            test_no_memory_bound_segments;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_higher_ratio_never_slower ] );
    ]
