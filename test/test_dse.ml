(* Tests for design-space exploration: space counting, sampling, Pareto
   extraction and best-architecture selection. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

let mobv2 = Cnn.Model_zoo.mobilenet_v2 ()
let xcp = Cnn.Model_zoo.xception ()

(* ------------------------------------------------------------ Space *)

let test_space_small_counts () =
  (* 4 layers, 2 CEs: f=1, s=1 -> one design (tail = layers 2-4). *)
  checkf "n=4 c=2" 1.0 (Dse.Space.designs_for_ce_count ~num_layers:4 ~ces:2);
  (* 4 layers, 3 CEs: (f=1,s=2): C(2,1)=2; (f=2,s=1): 1 -> 3. *)
  checkf "n=4 c=3" 3.0 (Dse.Space.designs_for_ce_count ~num_layers:4 ~ces:3);
  (* Exhaustive check for n=5, c=3: (f=1,s=2):C(3,1)=3; (f=2,s=1):1 ->
     wait also (f=2,s=1) tail=3 layers 1 way; f=1,s=2: tail=4, C(3,1)=3.
     Total 4. *)
  checkf "n=5 c=3" 4.0 (Dse.Space.designs_for_ce_count ~num_layers:5 ~ces:3)

let test_space_xception_magnitude () =
  (* The paper quotes roughly 97.1 billion designs for Xception over CE
     counts 2-11; our composition-based count lands in the same decade. *)
  let total =
    Dse.Space.total_designs
      ~num_layers:(Cnn.Model.num_layers xcp)
      ~ce_counts:(List.init 10 (fun i -> i + 2))
  in
  checkb
    (Printf.sprintf "total %.3g within [1e10, 1e12]" total)
    true
    (total >= 1e10 && total <= 1e12)

let test_space_random_spec_valid () =
  let rng = Util.Prng.create ~seed:1L in
  for _ = 1 to 200 do
    let spec =
      Dse.Space.random_spec rng
        ~num_layers:(Cnn.Model.num_layers mobv2)
        ~ce_counts:(List.init 10 (fun i -> i + 2))
    in
    (* Materialisation validates the spec thoroughly. *)
    let a = Arch.Custom.arch_of_spec mobv2 spec in
    checkb "ces in range" true
      (Arch.Block.total_ces a >= 2 && Arch.Block.total_ces a <= 11)
  done

let test_space_random_deterministic () =
  let draw seed =
    let rng = Util.Prng.create ~seed in
    Dse.Space.random_spec rng ~num_layers:52
      ~ce_counts:(List.init 10 (fun i -> i + 2))
  in
  checkb "same seed same spec" true (draw 5L = draw 5L)

(* ----------------------------------------------------------- Pareto *)

let pt x y = { Dse.Pareto.item = (x, y); objective_up = y; objective_down = x }

let test_pareto_simple () =
  let front = Dse.Pareto.front [ pt 1.0 1.0; pt 2.0 2.0; pt 3.0 1.5 ] in
  (* (3,1.5) is dominated by (2,2); (1,1) and (2,2) survive. *)
  check "two on front" 2 (List.length front)

let test_pareto_duplicates () =
  let front = Dse.Pareto.front [ pt 1.0 1.0; pt 1.0 1.0; pt 1.0 1.0 ] in
  check "one representative" 1 (List.length front)

let test_dominates () =
  checkb "strictly better" true (Dse.Pareto.dominates (pt 1.0 2.0) (pt 2.0 1.0));
  checkb "equal does not dominate" false
    (Dse.Pareto.dominates (pt 1.0 1.0) (pt 1.0 1.0))

let prop_pareto_sound =
  QCheck2.Test.make ~name:"front members are mutually non-dominated" ~count:100
    (Generators.pareto_coords ~max_points:40)
    (fun coords ->
      let pts = List.map (fun (x, y) -> pt x y) coords in
      let front = Dse.Pareto.front pts in
      List.for_all
        (fun a ->
          (* nothing in the input dominates a front member *)
          not (List.exists (fun b -> Dse.Pareto.dominates b a) pts))
        front)

let prop_pareto_complete =
  QCheck2.Test.make ~name:"non-dominated inputs appear on the front"
    ~count:100
    (Generators.pareto_coords ~max_points:30)
    (fun coords ->
      let pts = List.map (fun (x, y) -> pt x y) coords in
      let front = Dse.Pareto.front pts in
      List.for_all
        (fun p ->
          let dominated = List.exists (fun q -> Dse.Pareto.dominates q p) pts in
          dominated
          || List.exists
               (fun (f : (float * float) Dse.Pareto.point) ->
                 f.Dse.Pareto.objective_up = p.Dse.Pareto.objective_up
                 && f.Dse.Pareto.objective_down = p.Dse.Pareto.objective_down)
               front)
        pts)

(* ----------------------------------------------------------- Select *)

let candidate label ?(feasible = true) latency =
  {
    Dse.Select.label;
    metrics =
      {
        Mccm.Metrics.latency_s = latency;
        throughput_ips = 1.0 /. latency;
        buffer_bytes = 100;
        accesses = Mccm.Access.weights 100;
        feasible;
      };
  }

let test_select_tie_rule () =
  let cs = [ candidate "a" 1.0; candidate "b" 1.05; candidate "c" 1.2 ] in
  Alcotest.(check (list string))
    "a and b tie within 10%" [ "a"; "b" ]
    (Dse.Select.winner_labels ~metric:`Latency cs)

let test_select_excludes_infeasible () =
  let cs = [ candidate "bad" ~feasible:false 0.1; candidate "good" 1.0 ] in
  Alcotest.(check (list string))
    "feasible only" [ "good" ]
    (Dse.Select.winner_labels ~metric:`Latency cs)

let test_select_throughput_direction () =
  let cs = [ candidate "slow" 2.0; candidate "fast" 1.0 ] in
  Alcotest.(check (list string))
    "fast wins throughput" [ "fast" ]
    (Dse.Select.winner_labels ~metric:`Throughput cs)

let test_select_empty_when_all_infeasible () =
  let cs = [ candidate "x" ~feasible:false 1.0 ] in
  check "no winners" 0
    (List.length (Dse.Select.winner_labels ~metric:`Latency cs))

(* ---------------------------------------------------------- Explore *)

let test_explore_deterministic () =
  let run () =
    Dse.Explore.run ~seed:7L ~samples:50 mobv2 Platform.Board.vcu110
  in
  let a = run () and b = run () in
  check "same count"
    (List.length a.Dse.Explore.evaluated)
    (List.length b.Dse.Explore.evaluated);
  checkb "same specs" true
    (List.for_all2
       (fun (x : Dse.Explore.evaluated) (y : Dse.Explore.evaluated) ->
         x.Dse.Explore.spec = y.Dse.Explore.spec)
       a.Dse.Explore.evaluated b.Dse.Explore.evaluated)

let test_explore_front_subset () =
  let r = Dse.Explore.run ~seed:3L ~samples:100 mobv2 Platform.Board.vcu110 in
  checkb "front nonempty" true (r.Dse.Explore.front <> []);
  checkb "front within evaluated" true
    (List.for_all
       (fun (p : Dse.Explore.evaluated Dse.Pareto.point) ->
         List.memq p.Dse.Pareto.item r.Dse.Explore.evaluated)
       r.Dse.Explore.front)

let test_explore_parallel_deterministic () =
  let run domains =
    (Dse.Explore.run ~seed:9L ~domains ~samples:60 mobv2 Platform.Board.vcu110)
      .Dse.Explore.evaluated
  in
  let a = run 2 and b = run 2 in
  checkb "same designs across runs" true
    (List.for_all2
       (fun (x : Dse.Explore.evaluated) (y : Dse.Explore.evaluated) ->
         x.Dse.Explore.spec = y.Dse.Explore.spec)
       a b)

let test_explore_domain_count_invariant () =
  (* The design set is drawn from one PRNG stream before any domain is
     spawned, so the whole result — the Pareto front included — is a
     function of the seed alone, never of the parallelism. *)
  let run domains =
    Dse.Explore.run ~seed:11L ~domains ~samples:64 mobv2 Platform.Board.vcu110
  in
  let a = run 1 and b = run 4 in
  checkb "same evaluated specs" true
    (List.for_all2
       (fun (x : Dse.Explore.evaluated) (y : Dse.Explore.evaluated) ->
         x.Dse.Explore.spec = y.Dse.Explore.spec)
       a.Dse.Explore.evaluated b.Dse.Explore.evaluated);
  check "same front size"
    (List.length a.Dse.Explore.front)
    (List.length b.Dse.Explore.front);
  checkb "identical fronts" true
    (List.for_all2
       (fun (p : Dse.Explore.evaluated Dse.Pareto.point)
            (q : Dse.Explore.evaluated Dse.Pareto.point) ->
         p.Dse.Pareto.item.Dse.Explore.spec = q.Dse.Pareto.item.Dse.Explore.spec
         && p.Dse.Pareto.item.Dse.Explore.metrics
            = q.Dse.Pareto.item.Dse.Explore.metrics)
       a.Dse.Explore.front b.Dse.Explore.front)

let test_explore_parallel_matches_metrics () =
  (* Parallel evaluation must compute the same metrics for the same
     specs (the model is pure). *)
  let r = Dse.Explore.run ~seed:4L ~domains:3 ~samples:30 mobv2 Platform.Board.vcu110 in
  List.iter
    (fun (e : Dse.Explore.evaluated) ->
      let archi = Arch.Custom.arch_of_spec mobv2 e.Dse.Explore.spec in
      let m = Mccm.Evaluate.metrics mobv2 Platform.Board.vcu110 archi in
      check "same accesses"
        (Mccm.Metrics.accesses_bytes m)
        (Mccm.Metrics.accesses_bytes e.Dse.Explore.metrics))
    r.Dse.Explore.evaluated

let test_explore_dedupes_duplicates () =
  (* Regression for the duplicate-spec fix: restricting the draw to CE
     counts 2-3 makes the slice tiny (ces=2 has exactly one design), so
     a 60-sample run redraws designs constantly.  [sampled] must keep
     counting every draw while [evaluated] holds each distinct design
     once; the numbers and the front are pinned for the fixed seed. *)
  let r =
    Dse.Explore.run ~seed:21L ~samples:60 ~ce_counts:[ 2; 3 ] mobv2
      Platform.Board.vcu110
  in
  check "sampled counts duplicates" 60 r.Dse.Explore.sampled;
  check "evaluated is deduplicated" 15 (List.length r.Dse.Explore.evaluated);
  let specs =
    List.map (fun (e : Dse.Explore.evaluated) -> e.Dse.Explore.spec)
      r.Dse.Explore.evaluated
  in
  check "specs distinct" 15 (List.length (List.sort_uniq compare specs));
  check "front size" 7 (List.length r.Dse.Explore.front);
  Alcotest.(check (list (pair int (list int))))
    "pinned front specs"
    [ (1, [ 33 ]); (1, [ 36 ]); (1, [ 43 ]); (1, [ 47 ]); (1, [ 51 ]);
      (2, []); (1, []) ]
    (List.map
       (fun (p : Dse.Explore.evaluated Dse.Pareto.point) ->
         let s = p.Dse.Pareto.item.Dse.Explore.spec in
         (s.Arch.Custom.pipelined_layers, s.Arch.Custom.tail_boundaries))
       r.Dse.Explore.front)

let test_explore_session_serves_duplicates () =
  (* Regression for the cached-arm fix: every draw goes through one
     shared evaluation session, so a redrawn design must be served from
     the session's whole-architecture cache rather than rebuilt.  With
     CE count pinned to 2 the slice holds exactly one design, so a
     60-sample run is 1 miss + 59 arch-cache hits. *)
  let r =
    Dse.Explore.run ~seed:21L ~samples:60 ~ce_counts:[ 2 ] mobv2
      Platform.Board.vcu110
  in
  check "sampled" 60 r.Dse.Explore.sampled;
  check "distinct" 1 r.Dse.Explore.distinct;
  check "arch hits" 59 r.Dse.Explore.stats.Mccm.Eval_session.arch_hits

let test_improvement_over_self () =
  let r = Dse.Explore.run ~seed:3L ~samples:100 mobv2 Platform.Board.vcu110 in
  match r.Dse.Explore.evaluated with
  | [] -> Alcotest.fail "no designs evaluated"
  | e :: _ -> (
    match Dse.Explore.improvement_over r ~reference:e.Dse.Explore.metrics with
    | None -> Alcotest.fail "self must qualify"
    | Some (buf, thr) ->
      checkb "non-negative improvements" true (buf >= 0.0 && thr >= 0.0))

(* -------------------------------------------------------- Objective *)

let mk_metrics ?(feasible = true) ~latency ~buffers ~accesses () =
  {
    Mccm.Metrics.latency_s = latency;
    throughput_ips = 1.0 /. latency;
    buffer_bytes = buffers;
    accesses = Mccm.Access.weights accesses;
    feasible;
  }

let test_objective_atoms () =
  let reference = mk_metrics ~latency:1.0 ~buffers:100 ~accesses:100 () in
  let better = mk_metrics ~latency:0.5 ~buffers:50 ~accesses:200 () in
  checkf "latency gain 2x" 2.0
    (Dse.Objective.score Dse.Objective.latency ~reference better);
  checkf "throughput gain 2x" 2.0
    (Dse.Objective.score Dse.Objective.throughput ~reference better);
  checkf "buffer gain 2x" 2.0
    (Dse.Objective.score Dse.Objective.buffers ~reference better);
  checkf "access gain 0.5x" 0.5
    (Dse.Objective.score Dse.Objective.accesses ~reference better);
  checkf "reference scores 1" 1.0
    (Dse.Objective.score Dse.Objective.latency ~reference reference)

let test_objective_weighted () =
  let reference = mk_metrics ~latency:1.0 ~buffers:100 ~accesses:100 () in
  let m = mk_metrics ~latency:0.5 ~buffers:400 ~accesses:100 () in
  (* 2x throughput, 4x worse buffers: equal weights give sqrt(2*0.25)
     via the geometric combination. *)
  let obj =
    Dse.Objective.weighted
      [ (Dse.Objective.throughput, 1.0); (Dse.Objective.buffers, 1.0) ]
  in
  checkf "geometric combination" 0.5 (Dse.Objective.score obj ~reference m)

let test_objective_constraint () =
  let reference = mk_metrics ~latency:1.0 ~buffers:100 ~accesses:100 () in
  let m = mk_metrics ~latency:0.5 ~buffers:200 ~accesses:100 () in
  let obj =
    Dse.Objective.subject_to Dse.Objective.throughput
      ~max_buffers:(Some 150) ~max_accesses:None
  in
  checkb "violates budget" true
    (Dse.Objective.score obj ~reference m = neg_infinity);
  let obj2 =
    Dse.Objective.subject_to Dse.Objective.throughput
      ~max_buffers:(Some 250) ~max_accesses:None
  in
  checkf "within budget" 2.0 (Dse.Objective.score obj2 ~reference m)

let test_objective_infeasible () =
  let reference = mk_metrics ~latency:1.0 ~buffers:100 ~accesses:100 () in
  let m = mk_metrics ~feasible:false ~latency:0.1 ~buffers:1 ~accesses:1 () in
  checkb "infeasible scores -inf" true
    (Dse.Objective.score Dse.Objective.throughput ~reference m = neg_infinity)

let test_objective_best () =
  let reference = mk_metrics ~latency:1.0 ~buffers:100 ~accesses:100 () in
  let e latency =
    {
      Dse.Explore.spec =
        { Arch.Custom.pipelined_layers = 1; tail_boundaries = [] };
      metrics = mk_metrics ~latency ~buffers:100 ~accesses:100 ();
    }
  in
  match
    Dse.Objective.best Dse.Objective.throughput ~reference
      [ e 1.0; e 0.25; e 0.5 ]
  with
  | Some winner ->
    checkf "picks fastest" 0.25 winner.Dse.Explore.metrics.Mccm.Metrics.latency_s
  | None -> Alcotest.fail "no winner"

(* ------------------------------------------------------- flat codec *)

let prop_flat_roundtrip =
  QCheck2.Test.make ~name:"flat encode |> decode is the identity" ~count:300
    (Generators.custom_spec ~num_layers:20)
    (fun spec ->
      let ces = Arch.Custom.total_ces spec in
      let width = Dse.Space.Flat.width ~ces in
      let buf = Dse.Space.Flat.create ~width 3 in
      (* Encode into the middle row: a codec that strays outside its
         row would corrupt the zeroed neighbours. *)
      Dse.Space.Flat.encode buf ~width ~at:1 spec;
      Dse.Space.Flat.decode buf ~width 1 = spec
      && Dse.Space.Flat.pipelined buf ~width 1
         = spec.Arch.Custom.pipelined_layers
      && Dse.Space.Flat.segments buf ~width 1
         = ces - spec.Arch.Custom.pipelined_layers
      && Dse.Space.Flat.decode buf ~width 0
         = { Arch.Custom.pipelined_layers = 0; tail_boundaries = [] }
      && Dse.Space.Flat.decode buf ~width 2
         = { Arch.Custom.pipelined_layers = 0; tail_boundaries = [] })

let prop_flat_eval_bit_identical =
  QCheck2.Test.make ~name:"decoded spec evaluates bit-identically" ~count:40
    (Generators.custom_spec ~num_layers:(Cnn.Model.num_layers mobv2))
    (fun spec ->
      let ces = Arch.Custom.total_ces spec in
      let width = Dse.Space.Flat.width ~ces in
      let buf = Dse.Space.Flat.create ~width 1 in
      Dse.Space.Flat.encode buf ~width ~at:0 spec;
      let spec' = Dse.Space.Flat.decode buf ~width 0 in
      Mccm.Evaluate.metrics mobv2 Platform.Board.vcu110
        (Arch.Custom.arch_of_spec mobv2 spec')
      = Mccm.Evaluate.metrics mobv2 Platform.Board.vcu110
          (Arch.Custom.arch_of_spec mobv2 spec))

let prop_flat_bounds_bit_identical =
  let table = Cnn.Table.of_model mobv2 in
  let b = Dse.Bounds.create table Platform.Board.vcu110 in
  QCheck2.Test.make
    ~name:"flat bounds equal list bounds bit-for-bit" ~count:200
    (Generators.custom_spec ~num_layers:(Cnn.Model.num_layers mobv2))
    (fun spec ->
      let ces = Arch.Custom.total_ces spec in
      let width = Dse.Space.Flat.width ~ces in
      let buf = Dse.Space.Flat.create ~width 1 in
      Dse.Space.Flat.encode buf ~width ~at:0 spec;
      let ctx = Dse.Bounds.context b ~ces in
      Dse.Bounds.throughput_upper_bound_flat ctx buf ~width 0
      = Dse.Bounds.throughput_upper_bound b spec
      && Dse.Bounds.latency_lower_bound_flat ctx buf ~width 0
         = Dse.Bounds.latency_lower_bound b spec
      && Dse.Bounds.compute_ii_floor_cycles_flat ctx buf ~width 0
         = Dse.Bounds.compute_ii_floor_cycles b spec)

(* The flat enumerator must reproduce [Enumerate.enumerate_specs]
   exactly: same specs, same lexicographic order, same cap handling. *)
let test_flat_enumerate_matches_list () =
  List.iter
    (fun (num_layers, ces, max_specs) ->
      let reference =
        Dse.Enumerate.enumerate_specs ~num_layers ~ces ~max_specs
      in
      let width = Dse.Space.Flat.width ~ces in
      let buf = Dse.Space.Flat.enumerate ~num_layers ~ces ~max_specs in
      check
        (Printf.sprintf "count n=%d c=%d cap=%d" num_layers ces max_specs)
        (List.length reference)
        (Dse.Space.Flat.count buf ~width);
      List.iteri
        (fun i spec ->
          checkb (Printf.sprintf "row %d of n=%d c=%d" i num_layers ces) true
            (Dse.Space.Flat.decode buf ~width i = spec))
        reference)
    [
      (10, 3, 10000);
      (10, 4, 10000);
      (14, 5, 2000);
      (8, 2, 100);
      (6, 6, 1000);
      (4, 7, 50);
      (10, 4, 17);
      (10, 4, 0);
    ]

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pareto_sound;
      prop_pareto_complete;
      prop_flat_roundtrip;
      prop_flat_eval_bit_identical;
      prop_flat_bounds_bit_identical;
    ]

let () =
  Alcotest.run "dse"
    [
      ( "space",
        [
          Alcotest.test_case "small counts" `Quick test_space_small_counts;
          Alcotest.test_case "xception magnitude" `Quick
            test_space_xception_magnitude;
          Alcotest.test_case "random spec valid" `Quick
            test_space_random_spec_valid;
          Alcotest.test_case "random deterministic" `Quick
            test_space_random_deterministic;
          Alcotest.test_case "flat enumerate matches list" `Quick
            test_flat_enumerate_matches_list;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "simple" `Quick test_pareto_simple;
          Alcotest.test_case "duplicates" `Quick test_pareto_duplicates;
          Alcotest.test_case "dominates" `Quick test_dominates;
        ] );
      ( "select",
        [
          Alcotest.test_case "tie rule" `Quick test_select_tie_rule;
          Alcotest.test_case "excludes infeasible" `Quick
            test_select_excludes_infeasible;
          Alcotest.test_case "throughput direction" `Quick
            test_select_throughput_direction;
          Alcotest.test_case "all infeasible" `Quick
            test_select_empty_when_all_infeasible;
        ] );
      ( "objective",
        [
          Alcotest.test_case "atoms" `Quick test_objective_atoms;
          Alcotest.test_case "weighted" `Quick test_objective_weighted;
          Alcotest.test_case "constraint" `Quick test_objective_constraint;
          Alcotest.test_case "infeasible" `Quick test_objective_infeasible;
          Alcotest.test_case "best" `Quick test_objective_best;
        ] );
      ( "explore",
        [
          Alcotest.test_case "deterministic" `Quick test_explore_deterministic;
          Alcotest.test_case "front subset" `Quick test_explore_front_subset;
          Alcotest.test_case "dedupes duplicate draws" `Quick
            test_explore_dedupes_duplicates;
          Alcotest.test_case "session serves duplicates" `Quick
            test_explore_session_serves_duplicates;
          Alcotest.test_case "improvement over self" `Quick
            test_improvement_over_self;
          Alcotest.test_case "parallel deterministic" `Quick
            test_explore_parallel_deterministic;
          Alcotest.test_case "domain-count invariant" `Quick
            test_explore_domain_count_invariant;
          Alcotest.test_case "parallel metrics" `Quick
            test_explore_parallel_matches_metrics;
        ] );
      ("properties", properties);
    ]
