(* Tests for exhaustive enumeration and local search over custom
   designs, plus the builder's ablation knobs. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mobv2 = Cnn.Model_zoo.mobilenet_v2 ()
let board = Platform.Board.vcu108

(* -------------------------------------------------------- enumerate *)

let test_enumeration_counts_match_space () =
  (* The enumerated count must equal the analytic space size when under
     the cap. *)
  List.iter
    (fun (n, ces) ->
      let specs =
        Dse.Enumerate.enumerate_specs ~num_layers:n ~ces ~max_specs:100000
      in
      check
        (Printf.sprintf "n=%d ces=%d" n ces)
        (int_of_float (Dse.Space.designs_for_ce_count ~num_layers:n ~ces))
        (List.length specs))
    [ (4, 2); (4, 3); (5, 3); (8, 4); (10, 3); (12, 5) ]

let test_enumeration_specs_distinct_and_valid () =
  let n = 10 and ces = 4 in
  let specs =
    Dse.Enumerate.enumerate_specs ~num_layers:n ~ces ~max_specs:100000
  in
  check "distinct" (List.length specs)
    (List.length (List.sort_uniq compare specs));
  List.iter
    (fun spec ->
      check "exact CE count" ces (Arch.Custom.total_ces spec);
      (* Must materialise without raising. *)
      let model =
        (* a synthetic 10-layer chain *)
        let layers =
          List.init n (fun i ->
              Cnn.Layer.v ~index:i ~name:(Printf.sprintf "l%d" i)
                ~kind:Cnn.Layer.Standard
                ~in_shape:(Cnn.Shape.v ~channels:8 ~height:16 ~width:16)
                ~out_channels:8 ~kernel:3 ~stride:1 ~padding:1 ())
        in
        Cnn.Model.v ~name:"Chain10" ~abbreviation:"C10" ~layers
      in
      ignore (Arch.Custom.arch_of_spec model spec))
    specs

let test_enumeration_cap () =
  let specs =
    Dse.Enumerate.enumerate_specs ~num_layers:52 ~ces:8 ~max_specs:500
  in
  check "capped" 500 (List.length specs)

let test_exhaustive_small () =
  let evaluated = Dse.Enumerate.exhaustive ~ces:2 mobv2 board in
  (* 52 layers, 2 CEs: f=1, s=1 -> exactly one design. *)
  check "one design" 1 (List.length evaluated);
  checkb "feasible" true
    (List.for_all
       (fun (e : Dse.Explore.evaluated) ->
         e.Dse.Explore.metrics.Mccm.Metrics.feasible)
       evaluated)

(* ----------------------------------------------------- local search *)

let objective m = m.Mccm.Metrics.throughput_ips

let test_local_search_monotone () =
  let seed = { Arch.Custom.pipelined_layers = 3; tail_boundaries = [ 20 ] } in
  let steps = Dse.Enumerate.local_search ~objective mobv2 board seed in
  checkb "has seed" true (List.length steps >= 1);
  let scores =
    List.map
      (fun (s : Dse.Enumerate.step) -> objective s.Dse.Enumerate.metrics)
      steps
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  checkb "strictly improving" true (increasing scores)

let test_local_search_beats_seed () =
  let seed = { Arch.Custom.pipelined_layers = 2; tail_boundaries = [ 30 ] } in
  let steps = Dse.Enumerate.local_search ~objective mobv2 board seed in
  match (steps, List.rev steps) with
  | first :: _, last :: _ ->
    checkb "final >= seed" true
      (objective last.Dse.Enumerate.metrics
      >= objective first.Dse.Enumerate.metrics)
  | _ -> Alcotest.fail "no steps"

let test_local_search_respects_max_steps () =
  let seed = { Arch.Custom.pipelined_layers = 2; tail_boundaries = [ 30 ] } in
  let steps =
    Dse.Enumerate.local_search ~objective ~max_steps:1 mobv2 board seed
  in
  checkb "at most seed + 1" true (List.length steps <= 2)

let test_local_search_specs_valid () =
  let seed = { Arch.Custom.pipelined_layers = 4; tail_boundaries = [ 15; 30 ] } in
  let steps = Dse.Enumerate.local_search ~objective mobv2 board seed in
  List.iter
    (fun (s : Dse.Enumerate.step) ->
      ignore (Arch.Custom.arch_of_spec mobv2 s.Dse.Enumerate.spec))
    steps

let test_local_search_seed_first () =
  let seed = { Arch.Custom.pipelined_layers = 3; tail_boundaries = [ 20 ] } in
  let steps = Dse.Enumerate.local_search ~objective mobv2 board seed in
  match steps with
  | [] -> Alcotest.fail "no steps"
  | first :: _ ->
    checkb "trajectory starts at the seed" true
      (first.Dse.Enumerate.spec = seed);
    checkb "seed metrics match direct evaluation" true
      (first.Dse.Enumerate.metrics
      = Mccm.Evaluate.metrics mobv2 board (Arch.Custom.arch_of_spec mobv2 seed))

let test_local_search_reaches_local_optimum () =
  (* With an unbounded step budget the climb must stop only when no
     single-move neighbour improves the objective — check that claim
     against the exported neighbourhood itself. *)
  let seed = { Arch.Custom.pipelined_layers = 3; tail_boundaries = [ 20 ] } in
  let steps =
    Dse.Enumerate.local_search ~objective ~max_steps:1000 mobv2 board seed
  in
  let final = List.nth steps (List.length steps - 1) in
  let best = objective final.Dse.Enumerate.metrics in
  let session = Mccm.Eval_session.create mobv2 board in
  List.iter
    (fun (move, spec) ->
      let m =
        Mccm.Eval_session.metrics session (Arch.Custom.arch_of_spec mobv2 spec)
      in
      checkb
        (Printf.sprintf "no improving neighbour (%s)" move)
        true
        (objective m <= best))
    (Dse.Enumerate.neighbours
       ~num_layers:(Cnn.Model.num_layers mobv2)
       final.Dse.Enumerate.spec)

let test_local_search_session_invisible () =
  (* The session cache must not change the trajectory: same moves, same
     specs, bit-identical metrics with and without memoization. *)
  let seed = { Arch.Custom.pipelined_layers = 4; tail_boundaries = [ 15; 30 ] } in
  let run memoize =
    Dse.Enumerate.local_search ~objective
      ~session:(Mccm.Eval_session.create ~memoize mobv2 board)
      mobv2 board seed
  in
  checkb "identical trajectories" true (run true = run false)

let test_exhaustive_prefix_deterministic () =
  (* Enumeration order is lexicographic and independent of the cap, so
     a shorter run must be a prefix of a longer one. *)
  let run max_specs = Dse.Enumerate.exhaustive ~max_specs ~ces:3 mobv2 board in
  let short = run 60 and long = run 120 in
  checkb "short run is a prefix" true
    (List.length short <= List.length long);
  List.iteri
    (fun i (e : Dse.Explore.evaluated) ->
      let e' = List.nth long i in
      checkb "same spec" true (e.Dse.Explore.spec = e'.Dse.Explore.spec);
      checkb "same metrics" true (e.Dse.Explore.metrics = e'.Dse.Explore.metrics))
    short

let test_exhaustive_session_invisible () =
  let run memoize =
    Dse.Enumerate.exhaustive
      ~session:(Mccm.Eval_session.create ~memoize mobv2 board)
      ~max_specs:80 ~ces:4 mobv2 board
  in
  checkb "identical evaluations" true (run true = run false)

(* ------------------------------------------- best-first bit-exactness *)

(* A 10-layer chain of identical layers: a dense plateau of equal-score
   designs, the hardest case for tie-breaking determinism. *)
let chain10 =
  let layers =
    List.init 10 (fun i ->
        Cnn.Layer.v ~index:i ~name:(Printf.sprintf "u%d" i)
          ~kind:Cnn.Layer.Standard
          ~in_shape:(Cnn.Shape.v ~channels:8 ~height:16 ~width:16)
          ~out_channels:8 ~kernel:3 ~stride:1 ~padding:1 ())
  in
  Cnn.Model.v ~name:"Chain10" ~abbreviation:"C10" ~layers

let winner_testable =
  let pp ppf = function
    | None -> Format.fprintf ppf "none"
    | Some (e : Dse.Explore.evaluated) ->
      Format.fprintf ppf "{f=%d; b=[%s]} %.17g"
        e.Dse.Explore.spec.Arch.Custom.pipelined_layers
        (String.concat ";"
           (List.map string_of_int
              e.Dse.Explore.spec.Arch.Custom.tail_boundaries))
        e.Dse.Explore.metrics.Mccm.Metrics.throughput_ips
  in
  Alcotest.testable pp ( = )

(* Every (strategy, prune, domains) combination must return the winner
   of the unpruned reference scan — same spec, bit-identical metrics. *)
let test_best_first_bit_exact () =
  List.iter
    (fun (model, ces, objective, max_specs) ->
      let reference, _ =
        Dse.Enumerate.exhaustive_best ~max_specs ~prune:false ~strategy:`Scan
          ~objective ~ces model board
      in
      List.iter
        (fun (label, strategy, prune, domains) ->
          let got, stats =
            Dse.Enumerate.exhaustive_best ~max_specs ~prune ~strategy ~domains
              ~clamp:false ~objective ~ces model board
          in
          Alcotest.check winner_testable label reference got;
          check (label ^ ": specs accounted for")
            stats.Dse.Enumerate.enumerated
            (stats.Dse.Enumerate.evaluated + stats.Dse.Enumerate.pruned))
        [
          ("best-first pruned", `Best_first, true, 1);
          ("best-first unpruned", `Best_first, false, 1);
          ("best-first pruned, domains ignored", `Best_first, true, 4);
          ("scan pruned", `Scan, true, 1);
          ("scan unpruned", `Scan, false, 1);
          ("scan pruned 2 domains", `Scan, true, 2);
          ("scan pruned 4 domains", `Scan, true, 4);
          ("scan unpruned 2 domains", `Scan, false, 2);
          ("scan unpruned 4 domains", `Scan, false, 4);
          ("auto", `Auto, true, 1);
          ("auto 4 domains", `Auto, true, 4);
        ])
    [
      (mobv2, 3, `Throughput, 800);
      (mobv2, 4, `Throughput, 600);
      (mobv2, 3, `Latency, 800);
      (chain10, 4, `Throughput, 10000);
      (chain10, 4, `Latency, 10000);
    ]

(* The pooled path must reproduce the reference winner too.  One shared
   pool serves every configuration and workload back-to-back, so
   per-worker state leaking between runs (a stale fork, a stuck round)
   would surface as a wrong winner or a hang here. *)
let test_pooled_bit_exact () =
  let pool = Util.Parallel.Pool.create ~clamp:false ~domains:4 () in
  Fun.protect ~finally:(fun () -> Util.Parallel.Pool.shutdown pool)
  @@ fun () ->
  List.iter
    (fun (model, ces, objective, max_specs) ->
      let reference, _ =
        Dse.Enumerate.exhaustive_best ~max_specs ~prune:false ~strategy:`Scan
          ~objective ~ces model board
      in
      List.iter
        (fun (label, strategy, prune) ->
          let got, stats =
            Dse.Enumerate.exhaustive_best ~max_specs ~prune ~strategy ~pool
              ~objective ~ces model board
          in
          Alcotest.check winner_testable label reference got;
          check (label ^ ": ran on the pool") 4
            stats.Dse.Enumerate.domains_used;
          check (label ^ ": specs accounted for")
            stats.Dse.Enumerate.enumerated
            (stats.Dse.Enumerate.evaluated + stats.Dse.Enumerate.pruned))
        [
          ("pooled scan pruned", `Scan, true);
          ("pooled scan unpruned", `Scan, false);
          ("pooled auto picks scan", `Auto, true);
        ])
    [
      (mobv2, 3, `Throughput, 800);
      (mobv2, 4, `Throughput, 600);
      (mobv2, 3, `Latency, 800);
      (chain10, 4, `Throughput, 10000);
      (chain10, 4, `Latency, 10000);
    ]

(* On the uniform chain nearly every design ties: the returned winner
   must still be the lexicographically first one. *)
let test_tie_breaking_lex_first () =
  let reference, _ =
    Dse.Enumerate.exhaustive_best ~max_specs:10000 ~prune:false
      ~strategy:`Scan ~objective:`Throughput ~ces:3 chain10 board
  in
  let bnb, _ =
    Dse.Enumerate.exhaustive_best ~max_specs:10000 ~prune:true
      ~strategy:`Best_first ~objective:`Throughput ~ces:3 chain10 board
  in
  Alcotest.check winner_testable "tie goes to the lex-first spec" reference
    bnb;
  (match reference with
  | Some e ->
    (* The lex-first spec of ces=3 is f=1 with the earliest boundary. *)
    check "lex-first pipelined depth" 1
      e.Dse.Explore.spec.Arch.Custom.pipelined_layers
  | None -> Alcotest.fail "no winner");
  ()

(* Branch-and-bound must actually pay off on a deep ResNet workload —
   homogeneous mid-network layers make the floors tight: real pruning,
   winner preserved.  (On depthwise networks like MobileNetV2 the
   shared-engine parallelism coupling keeps per-layer floors loose and
   pruning near zero; that is expected, not a bug.) *)
let test_best_first_prunes () =
  let res152 = Cnn.Model_zoo.resnet152 () in
  let reference, _ =
    Dse.Enumerate.exhaustive_best ~max_specs:30000 ~prune:false
      ~strategy:`Scan ~objective:`Throughput ~ces:10 res152 board
  in
  let got, stats =
    Dse.Enumerate.exhaustive_best ~max_specs:30000 ~prune:true
      ~strategy:`Best_first ~objective:`Throughput ~ces:10 res152 board
  in
  Alcotest.check winner_testable "winner identical under pruning" reference
    got;
  checkb "pruned something" true (stats.Dse.Enumerate.pruned > 0);
  checkb "visited nodes" true (stats.Dse.Enumerate.nodes > 0);
  checkb "fewer evaluations than specs" true
    (stats.Dse.Enumerate.evaluated < stats.Dse.Enumerate.enumerated);
  check "accounting" stats.Dse.Enumerate.enumerated
    (stats.Dse.Enumerate.evaluated + stats.Dse.Enumerate.pruned)

let test_scan_reports_no_nodes () =
  let _, stats =
    Dse.Enumerate.exhaustive_best ~max_specs:100 ~prune:true ~strategy:`Scan
      ~objective:`Throughput ~ces:3 mobv2 board
  in
  check "scan has no B&B nodes" 0 stats.Dse.Enumerate.nodes

(* --------------------------------------------------- builder options *)

let res50 = Cnn.Model_zoo.resnet50 ()

let metrics_with options archi =
  (Mccm.Evaluate.run (Builder.Build.build ~options res50 board archi))
    .Mccm.Evaluate.metrics

let test_naive_parallelism_never_faster () =
  List.iter
    (fun (_, archi) ->
      let opt = metrics_with Builder.Build.default_options archi in
      let naive =
        metrics_with
          { Builder.Build.default_options with parallelism = `Naive }
          archi
      in
      checkb "optimized latency <= naive" true
        (opt.Mccm.Metrics.latency_s <= naive.Mccm.Metrics.latency_s *. 1.001))
    [
      ("seg", Arch.Baselines.segmented ~ces:4 res50);
      ("rr", Arch.Baselines.segmented_rr ~ces:4 res50);
      ("hyb", Arch.Baselines.hybrid ~ces:4 res50);
    ]

let test_balanced_pe_allocation () =
  (* Cycle balancing must narrow the busy-time spread of a round-robin
     pipeline's engines (or leave it unchanged at a fixed point). *)
  let spread options =
    let built =
      Builder.Build.build ~options res50 board
        (Arch.Baselines.segmented_rr ~ces:4 res50)
    in
    let cycles =
      Array.map
        (fun e ->
          List.fold_left
            (fun acc i ->
              if
                (Builder.Build.engine_for_layer built i).Engine.Ce.id
                = e.Engine.Ce.id
              then acc + Engine.Ce.layer_cycles e (Cnn.Model.layer res50 i)
              else acc)
            0
            (List.init (Cnn.Model.num_layers res50) Fun.id))
        built.Builder.Build.engines
    in
    let mx = Array.fold_left max 1 cycles in
    let mn = Array.fold_left min max_int cycles in
    float_of_int mx /. float_of_int (max 1 mn)
  in
  let macs = spread Builder.Build.default_options in
  let balanced =
    spread { Builder.Build.default_options with pe_allocation = `Balanced }
  in
  checkb
    (Printf.sprintf "balanced spread %.3f <= macs spread %.3f x 1.05" balanced
       macs)
    true
    (balanced <= macs *. 1.05)

let test_minimal_buffers_tradeoff () =
  List.iter
    (fun archi ->
      let greedy = metrics_with Builder.Build.default_options archi in
      let minimal =
        metrics_with
          { Builder.Build.default_options with buffers = `Minimal }
          archi
      in
      checkb "minimal uses fewer buffers" true
        (minimal.Mccm.Metrics.buffer_bytes <= greedy.Mccm.Metrics.buffer_bytes);
      checkb "minimal never accesses less" true
        (Mccm.Metrics.accesses_bytes minimal
        >= Mccm.Metrics.accesses_bytes greedy))
    [
      Arch.Baselines.segmented ~ces:4 res50;
      Arch.Baselines.segmented_rr ~ces:4 res50;
      Arch.Baselines.hybrid ~ces:4 res50;
    ]

let () =
  Alcotest.run "enumerate"
    [
      ( "enumeration",
        [
          Alcotest.test_case "counts match space" `Quick
            test_enumeration_counts_match_space;
          Alcotest.test_case "distinct and valid" `Quick
            test_enumeration_specs_distinct_and_valid;
          Alcotest.test_case "cap" `Quick test_enumeration_cap;
          Alcotest.test_case "exhaustive small" `Quick test_exhaustive_small;
          Alcotest.test_case "exhaustive prefix deterministic" `Quick
            test_exhaustive_prefix_deterministic;
          Alcotest.test_case "exhaustive session invisible" `Quick
            test_exhaustive_session_invisible;
        ] );
      ( "local search",
        [
          Alcotest.test_case "monotone" `Quick test_local_search_monotone;
          Alcotest.test_case "beats seed" `Quick test_local_search_beats_seed;
          Alcotest.test_case "max steps" `Quick
            test_local_search_respects_max_steps;
          Alcotest.test_case "valid specs" `Quick test_local_search_specs_valid;
          Alcotest.test_case "seed first" `Quick test_local_search_seed_first;
          Alcotest.test_case "genuine local optimum" `Slow
            test_local_search_reaches_local_optimum;
          Alcotest.test_case "session invisible" `Quick
            test_local_search_session_invisible;
        ] );
      ( "best-first",
        [
          Alcotest.test_case "bit-exact across strategies" `Slow
            test_best_first_bit_exact;
          Alcotest.test_case "pooled path bit-exact" `Quick
            test_pooled_bit_exact;
          Alcotest.test_case "ties break lex-first" `Quick
            test_tie_breaking_lex_first;
          Alcotest.test_case "pruning pays and preserves" `Slow
            test_best_first_prunes;
          Alcotest.test_case "scan reports no nodes" `Quick
            test_scan_reports_no_nodes;
        ] );
      ( "builder options",
        [
          Alcotest.test_case "naive parallelism" `Slow
            test_naive_parallelism_never_faster;
          Alcotest.test_case "minimal buffers" `Quick
            test_minimal_buffers_tradeoff;
          Alcotest.test_case "balanced PE allocation" `Quick
            test_balanced_pe_allocation;
        ] );
    ]
