(* Tests for the memoized evaluation session: cache accounting,
   fork/absorb merging, and QCheck2 bit-exactness properties showing
   the caches are semantically invisible — cached evaluation is
   [Stdlib.(=)]-identical to the uncached path on random cases and on
   random local-search and exhaustive runs. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mobv2 = Cnn.Model_zoo.mobilenet_v2 ()
let board = Platform.Board.vcu108

(* ------------------------------------------------------- accounting *)

let test_repeat_hits_arch_table () =
  let s = Mccm.Eval_session.create mobv2 board in
  let archi = Arch.Baselines.hybrid ~ces:4 mobv2 in
  let m1 = Mccm.Eval_session.metrics s archi in
  let m2 = Mccm.Eval_session.metrics s archi in
  checkb "hit is bit-identical" true (m1 = m2);
  let st = Mccm.Eval_session.stats s in
  check "both requests counted" 2 st.Mccm.Eval_session.evaluations;
  check "second served from arch table" 1 st.Mccm.Eval_session.arch_hits

let test_renamed_twin_shares_entry () =
  (* The arch key excludes the display name: a renamed copy of the same
     block structure must hit. *)
  let s = Mccm.Eval_session.create mobv2 board in
  let archi = Arch.Baselines.segmented ~ces:4 mobv2 in
  let twin =
    Arch.Block.arch ~name:"renamed-twin" ~style:archi.Arch.Block.style
      ~blocks:archi.Arch.Block.blocks
      ~coarse_pipelined:archi.Arch.Block.coarse_pipelined
      ~num_layers:(Cnn.Model.num_layers mobv2)
  in
  let m1 = Mccm.Eval_session.metrics s archi in
  let m2 = Mccm.Eval_session.metrics s twin in
  checkb "same metrics" true (m1 = m2);
  check "twin was a hit" 1 (Mccm.Eval_session.stats s).Mccm.Eval_session.arch_hits

let test_unmemoized_only_counts () =
  let s = Mccm.Eval_session.create ~memoize:false mobv2 board in
  let archi = Arch.Baselines.segmented ~ces:4 mobv2 in
  ignore (Mccm.Eval_session.metrics s archi);
  ignore (Mccm.Eval_session.metrics s archi);
  let st = Mccm.Eval_session.stats s in
  checkb "not memoized" false (Mccm.Eval_session.memoized s);
  check "requests counted" 2 st.Mccm.Eval_session.evaluations;
  check "no arch hits" 0 st.Mccm.Eval_session.arch_hits;
  check "no segment traffic" 0
    (st.Mccm.Eval_session.seg_hits + st.Mccm.Eval_session.seg_misses)

let test_batch_equals_map () =
  let archis =
    [
      Arch.Baselines.segmented ~ces:4 mobv2;
      Arch.Baselines.segmented_rr ~ces:4 mobv2;
      Arch.Baselines.hybrid ~ces:4 mobv2;
    ]
  in
  let batch =
    Mccm.Eval_session.metrics_batch (Mccm.Eval_session.create mobv2 board)
      archis
  in
  List.iter2
    (fun m archi ->
      checkb "batch equals direct evaluation" true
        (m = Mccm.Evaluate.metrics mobv2 board archi))
    batch archis

let test_fork_absorb () =
  let parent = Mccm.Eval_session.create mobv2 board in
  let archi = Arch.Baselines.hybrid ~ces:5 mobv2 in
  let forked = Mccm.Eval_session.fork parent in
  let mf = Mccm.Eval_session.metrics forked archi in
  Mccm.Eval_session.absorb ~into:parent forked;
  (* The fork's work merged back: the parent now serves the same
     architecture from its arch table, bit-identically. *)
  let mp = Mccm.Eval_session.metrics parent archi in
  checkb "absorbed entry is bit-identical" true (mf = mp);
  let st = Mccm.Eval_session.stats parent in
  check "fork's evaluation counted after absorb" 2
    st.Mccm.Eval_session.evaluations;
  check "parent's request was a hit" 1 st.Mccm.Eval_session.arch_hits

(* ---------------------------------------- bit-exactness (properties) *)

(* Cached evaluation of a random generated case equals the uncached
   session and the raw evaluator, including on an immediate revisit. *)
let prop_cached_bit_identical =
  QCheck2.Test.make ~name:"session metrics = uncached metrics (random cases)"
    ~count:40 Generators.case
    (fun c ->
      let model = c.Validate.Case.model and b = c.Validate.Case.board in
      let archi = Validate.Case.materialize c in
      let cached = Mccm.Eval_session.create model b in
      let uncached = Mccm.Eval_session.create ~memoize:false model b in
      let m1 = Mccm.Eval_session.metrics cached archi in
      let m2 = Mccm.Eval_session.metrics cached archi in
      m1 = m2
      && m1 = Mccm.Eval_session.metrics uncached archi
      && m1 = Mccm.Evaluate.metrics model b archi)

(* One warm session across several architectures of the same case: the
   shared segment/plan tables must not leak between structures. *)
let prop_shared_session_bit_identical =
  QCheck2.Test.make
    ~name:"one session over several architectures stays exact" ~count:25
    Generators.case
    (fun c ->
      let model = c.Validate.Case.model and b = c.Validate.Case.board in
      let ces = min 4 (Cnn.Model.num_layers model) in
      let archis =
        [
          Validate.Case.materialize c;
          Arch.Baselines.segmented ~ces model;
          Arch.Baselines.hybrid ~ces model;
          Validate.Case.materialize c;
        ]
      in
      let session = Mccm.Eval_session.create model b in
      List.for_all
        (fun archi ->
          Mccm.Eval_session.metrics session archi
          = Mccm.Evaluate.metrics model b archi)
        archis)

(* Random local-search runs: the memoized trajectory equals the
   unmemoized one move for move, metrics bit-identical. *)
let prop_local_search_session_invisible =
  QCheck2.Test.make ~name:"local search identical with and without cache"
    ~count:8
    (Generators.custom_spec ~num_layers:(Cnn.Model.num_layers mobv2))
    (fun seed ->
      let objective m = m.Mccm.Metrics.throughput_ips in
      let run memoize =
        Dse.Enumerate.local_search ~objective ~max_steps:3
          ~session:(Mccm.Eval_session.create ~memoize mobv2 board)
          mobv2 board seed
      in
      run true = run false)

(* Random exhaustive scans: same list of (spec, metrics) either way. *)
let prop_exhaustive_session_invisible =
  QCheck2.Test.make ~name:"exhaustive scan identical with and without cache"
    ~count:6
    QCheck2.Gen.(int_range 3 5)
    (fun ces ->
      let run memoize =
        Dse.Enumerate.exhaustive
          ~session:(Mccm.Eval_session.create ~memoize mobv2 board)
          ~max_specs:40 ~ces mobv2 board
      in
      run true = run false)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cached_bit_identical;
      prop_shared_session_bit_identical;
      prop_local_search_session_invisible;
      prop_exhaustive_session_invisible;
    ]

let () =
  Alcotest.run "eval_session"
    [
      ( "accounting",
        [
          Alcotest.test_case "repeat hits arch table" `Quick
            test_repeat_hits_arch_table;
          Alcotest.test_case "renamed twin shares entry" `Quick
            test_renamed_twin_shares_entry;
          Alcotest.test_case "unmemoized only counts" `Quick
            test_unmemoized_only_counts;
          Alcotest.test_case "batch equals map" `Quick test_batch_equals_map;
          Alcotest.test_case "fork and absorb" `Quick test_fork_absorb;
        ] );
      ("bit-exactness", properties);
    ]
