(* Golden regression tests: the whole stack is deterministic, so exact
   metric values of canonical configurations are pinned here.  A change
   to any heuristic or equation implementation that shifts results shows
   up as a diff in these numbers — update them deliberately, with the
   corresponding EXPERIMENTS.md refresh, never accidentally. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let res50 = lazy (Cnn.Model_zoo.resnet50 ())

let metrics ~board archi = Mccm.Evaluate.metrics (Lazy.force res50) board archi

(* Latency/throughput are floats; pin them to 0.1% rather than bit-exact
   so a change of float summation order does not count as a regression. *)
let close name expected actual =
  checkb
    (Printf.sprintf "%s: %.6g within 0.1%% of %.6g" name actual expected)
    true
    (Float.abs (actual -. expected) <= 0.001 *. Float.abs expected)

let test_golden_hybrid4_zc706 () =
  let m =
    metrics ~board:Platform.Board.zc706
      (Arch.Baselines.hybrid ~ces:4 (Lazy.force res50))
  in
  (* Pins updated when Single_ce_model moved from greedy per-layer OFM
     decisions to the cheapest-chain DP: Hybrid/4's single-CE tail found
     a schedule 1.6 MiB of traffic cheaper. *)
  close "latency" 54.2349e-3 m.Mccm.Metrics.latency_s;
  close "throughput" 33.0296 m.Mccm.Metrics.throughput_ips;
  check "accesses bytes" 57_045_376 (Mccm.Metrics.accesses_bytes m);
  check "buffer bytes" 2_515_054 m.Mccm.Metrics.buffer_bytes

let test_golden_segmented4_zcu102 () =
  let m =
    metrics ~board:Platform.Board.zcu102
      (Arch.Baselines.segmented ~ces:4 (Lazy.force res50))
  in
  close "latency" 34.3046e-3 m.Mccm.Metrics.latency_s;
  checkb "feasible" true m.Mccm.Metrics.feasible

let test_golden_segmented_rr2_zcu102 () =
  let m =
    metrics ~board:Platform.Board.zcu102
      (Arch.Baselines.segmented_rr ~ces:2 (Lazy.force res50))
  in
  close "latency" 12.6451e-3 m.Mccm.Metrics.latency_s;
  checkb "buffer near BRAM" true
    (m.Mccm.Metrics.buffer_bytes
    > Platform.Board.zcu102.Platform.Board.bram_bytes * 9 / 10)

let test_golden_notation () =
  Alcotest.(check string)
    "segmented/4 notation"
    "{L1-L13:CE1, L14-L26:CE2, L27-L40:CE3, L41-L53:CE4}"
    (Arch.Notation.to_string
       (Arch.Baselines.segmented ~ces:4 (Lazy.force res50)))

let test_golden_space_sizes () =
  (* Custom-space sizes are pure combinatorics; pin them exactly. *)
  (* 53 layers, 3 CEs: (f=1,s=2) C(51,1)=51 + (f=2,s=1) 1 = 52. *)
  Alcotest.(check (float 0.0))
    "Res50 ces=3" 52.0
    (Dse.Space.designs_for_ce_count ~num_layers:53 ~ces:3);
  Alcotest.(check (float 1e7))
    "XCp total 2-11" 1.1234e11
    (Dse.Space.total_designs ~num_layers:74
       ~ce_counts:(List.init 10 (fun i -> i + 2)))

let test_golden_dse_sample () =
  (* The first feasible design drawn with the default seed is pinned.
     Ten draws at this seed contain two duplicates; the sweep evaluates
     the eight distinct designs (all feasible) while still reporting
     every draw in [sampled]. *)
  let r =
    Dse.Explore.run ~seed:42L ~samples:10 (Lazy.force res50)
      Platform.Board.zcu102
  in
  match r.Dse.Explore.evaluated with
  | e :: _ ->
    checkb "first spec stable" true
      (e.Dse.Explore.spec.Arch.Custom.pipelined_layers >= 1);
    check "ten sampled" 10 r.Dse.Explore.sampled;
    check "eight distinct feasible" 8 (List.length r.Dse.Explore.evaluated)
  | [] -> Alcotest.fail "no designs"

let () =
  Alcotest.run "golden"
    [
      ( "metrics",
        [
          Alcotest.test_case "Hybrid/4 on ZC706" `Quick
            test_golden_hybrid4_zc706;
          Alcotest.test_case "Segmented/4 on ZCU102" `Quick
            test_golden_segmented4_zcu102;
          Alcotest.test_case "SegmentedRR/2 on ZCU102" `Quick
            test_golden_segmented_rr2_zcu102;
        ] );
      ( "structure",
        [
          Alcotest.test_case "notation" `Quick test_golden_notation;
          Alcotest.test_case "space sizes" `Quick test_golden_space_sizes;
          Alcotest.test_case "dse sample" `Quick test_golden_dse_sample;
        ] );
    ]
