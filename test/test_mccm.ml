(* Tests for the analytical cost model: the block models (Eq. 1-7), their
   composition (Eq. 8-9) and the metric/breakdown plumbing. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let res50 = Cnn.Model_zoo.resnet50 ()
let mobv2 = Cnn.Model_zoo.mobilenet_v2 ()

(* ----------------------------------------------------------- Access *)

let test_access_arithmetic () =
  let a = Mccm.Access.add (Mccm.Access.weights 10) (Mccm.Access.fms 5) in
  check "total" 15 (Mccm.Access.total a);
  check "weights" 10 a.Mccm.Access.weights_bytes;
  check "fms" 5 a.Mccm.Access.fms_bytes;
  check "sum" 30 (Mccm.Access.total (Mccm.Access.sum [ a; a ]))

(* ---------------------------------------------------------- Metrics *)

let metrics ?(latency = 1.0) ?(throughput = 1.0) ?(buffers = 100)
    ?(accesses = 100) ?(feasible = true) () =
  {
    Mccm.Metrics.latency_s = latency;
    throughput_ips = throughput;
    buffer_bytes = buffers;
    accesses = Mccm.Access.weights accesses;
    feasible;
  }

let test_metrics_better () =
  checkb "lower latency wins" true
    (Mccm.Metrics.better ~metric:`Latency (metrics ~latency:0.5 ())
       (metrics ~latency:1.0 ()));
  checkb "higher throughput wins" true
    (Mccm.Metrics.better ~metric:`Throughput (metrics ~throughput:2.0 ())
       (metrics ~throughput:1.0 ()));
  checkb "feasible beats infeasible" true
    (Mccm.Metrics.better ~metric:`Latency (metrics ~latency:9.0 ())
       (metrics ~latency:0.1 ~feasible:false ()))

(* --------------------------------------------------- Single_ce_model *)

let single_block_setup ~fm_capacity_mib =
  let board = Platform.Board.zcu102 in
  let layers = Cnn.Model.layers_in_range res50 ~first:0 ~last:9 in
  let engine =
    Engine.Ce.v ~id:1 ~pes:512
      ~parallelism:(Builder.Parallelism_select.choose ~pes:512 ~layers)
      ~dataflow:Engine.Dataflow.Output_stationary
  in
  let plan =
    {
      Builder.Buffer_alloc.weights_tile_bytes = 128 * 1024;
      fm_capacity_bytes = Util.Units.bytes_of_mib fm_capacity_mib;
      fm_ideal_bytes = Util.Units.bytes_of_mib 8.0;
    }
  in
  (board, engine, plan)

let eval_single ~fm_capacity_mib =
  let board, engine, plan = single_block_setup ~fm_capacity_mib in
  Mccm.Single_ce_model.evaluate ~model:res50 ~board ~engine ~plan ~first:0
    ~last:9 ~input_on_chip:false ~output_on_chip:false ()

let test_single_ideal_accesses () =
  (* With FMs fully buffered, accesses = weights + input + output. *)
  let r = eval_single ~fm_capacity_mib:8.0 in
  let bpe = 2 in
  let weights = Cnn.Model.weights_in_range res50 ~first:0 ~last:9 * bpe in
  let input = Cnn.Layer.ifm_elements (Cnn.Model.layer res50 0) * bpe in
  let output = Cnn.Layer.ofm_elements (Cnn.Model.layer res50 9) * bpe in
  check "weights exact" weights
    r.Mccm.Single_ce_model.accesses.Mccm.Access.weights_bytes;
  check "fms = boundary only" (input + output)
    r.Mccm.Single_ce_model.accesses.Mccm.Access.fms_bytes

let test_single_spill_monotone () =
  (* Shrinking the FM capacity can only increase accesses. *)
  let caps = [ 8.0; 2.0; 1.0; 0.5; 0.25 ] in
  let totals =
    List.map
      (fun c ->
        Mccm.Access.total
          (eval_single ~fm_capacity_mib:c).Mccm.Single_ce_model.accesses)
      caps
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  checkb "monotone non-decreasing" true (monotone totals)

let test_single_latency_is_per_layer_max () =
  let r = eval_single ~fm_capacity_mib:8.0 in
  checkb "latency >= compute" true
    (r.Mccm.Single_ce_model.latency_s
    >= r.Mccm.Single_ce_model.compute_s -. 1e-12);
  checkb "latency <= compute + memory" true
    (r.Mccm.Single_ce_model.latency_s
    <= r.Mccm.Single_ce_model.compute_s +. r.Mccm.Single_ce_model.memory_s
       +. 1e-12)

let test_single_interseg_input () =
  (* Declaring the input on-chip removes the input load. *)
  let board, engine, plan = single_block_setup ~fm_capacity_mib:8.0 in
  let off =
    Mccm.Single_ce_model.evaluate ~model:res50 ~board ~engine ~plan ~first:0
      ~last:9 ~input_on_chip:false ~output_on_chip:false ()
  in
  let on =
    Mccm.Single_ce_model.evaluate ~model:res50 ~board ~engine ~plan ~first:0
      ~last:9 ~input_on_chip:true ~output_on_chip:false ()
  in
  let bpe = 2 in
  check "saves exactly the input"
    (Cnn.Layer.ifm_elements (Cnn.Model.layer res50 0) * bpe)
    (Mccm.Access.total off.Mccm.Single_ce_model.accesses
    - Mccm.Access.total on.Mccm.Single_ce_model.accesses)

(* A hand-computed Eq. 6 miniature: one 1x1 conv, 16-bit elements.
   IFM 8x4x4 = 128 elems = 256 B; OFM 4x4x4 = 64 elems = 128 B;
   weights 4x8 = 32 elems = 64 B. *)
let miniature_layer () =
  Cnn.Layer.v ~index:0 ~name:"mini" ~kind:Cnn.Layer.Pointwise
    ~in_shape:(Cnn.Shape.v ~channels:8 ~height:4 ~width:4)
    ~out_channels:4 ~kernel:1 ~stride:1 ~padding:0 ()

let miniature_model () =
  Cnn.Model.v ~name:"Mini" ~abbreviation:"Mini" ~layers:[ miniature_layer () ]

let eval_miniature ~cap_bytes ~input_on_chip =
  let model = miniature_model () in
  let board = Platform.Board.zcu102 in
  let engine =
    Engine.Ce.v ~id:1 ~pes:4
      ~parallelism:(Engine.Parallelism.three_d ~filters:4 ~height:1 ~width:1)
      ~dataflow:Engine.Dataflow.Output_stationary
  in
  let plan =
    {
      Builder.Buffer_alloc.weights_tile_bytes = 16;
      fm_capacity_bytes = cap_bytes;
      fm_ideal_bytes = 384;
    }
  in
  Mccm.Single_ce_model.evaluate ~model ~board ~engine ~plan ~first:0 ~last:0
    ~input_on_chip ~output_on_chip:false ()

let test_eq6_miniature_fits () =
  (* cap 384 B holds IFM+OFM: accesses = W + IFM load + OFM store
     = 64 + 256 + 128. *)
  let r = eval_miniature ~cap_bytes:384 ~input_on_chip:false in
  check "ideal" (64 + 256 + 128)
    (Mccm.Access.total r.Mccm.Single_ce_model.accesses)

let test_eq6_miniature_ifm_streams () =
  (* cap 160 B: IFM (256) cannot fit; OFM (128) + one-row IFM band
     (1 row x 4 wide x 8 ch x 2 B = 64 B) does not fit either within 160
     after reserving OFM... OFM 128 + band 64 = 192 > 160, so the OFM
     streams out too.  avail = 160.  Option 1 (local IS):
     W x ceil(256/160) + 256 = 128 + 256 = 384.  Option 2 (local WS):
     256 x ceil(64/160) + 64 = 256 + 64 = 320 -> option 2 wins.
     Total = OFM 128 + 320 = 448. *)
  let r = eval_miniature ~cap_bytes:160 ~input_on_chip:false in
  check "streaming accesses" 448
    (Mccm.Access.total r.Mccm.Single_ce_model.accesses)

let test_eq6_miniature_interseg_input () =
  (* Input arriving through an on-chip inter-segment buffer costs no IFM
     load; OFM still mandatorily stores (last block). *)
  let r = eval_miniature ~cap_bytes:384 ~input_on_chip:true in
  check "no input load" (64 + 128)
    (Mccm.Access.total r.Mccm.Single_ce_model.accesses)

(* Eq. 8/9 composition miniature: the same two-layer model evaluated as
   Segmented/2; toggling the inter-segment buffer trades 2 x boundary
   bytes of traffic for 2 x boundary bytes of buffer. *)
let test_eq9_interseg_tradeoff () =
  let model = Cnn.Model_zoo.mobilenet_v2 () in
  let archi = Arch.Baselines.segmented ~ces:2 model in
  let board_small =
    Platform.Board.v ~name:"small" ~dsps:256 ~bram_mib:0.35
      ~bandwidth_gb_per_sec:3.2 ()
  in
  let board_big =
    Platform.Board.v ~name:"big" ~dsps:256 ~bram_mib:16.0
      ~bandwidth_gb_per_sec:3.2 ()
  in
  let small = Mccm.Evaluate.metrics model board_small archi in
  let big = Mccm.Evaluate.metrics model board_big archi in
  QCheck2.assume small.Mccm.Metrics.feasible;
  checkb "plentiful BRAM never accesses more" true
    (Mccm.Metrics.accesses_bytes big <= Mccm.Metrics.accesses_bytes small)

(* --------------------------------------------------- Pipelined_model *)

let pipelined_setup () =
  let board = Platform.Board.zcu102 in
  let archi = Arch.Baselines.hybrid ~ces:5 res50 in
  let built = Builder.Build.build res50 board archi in
  match
    ( built.Builder.Build.blocks.(0),
      built.Builder.Build.plan.Builder.Buffer_alloc.block_plans.(0) )
  with
  | ( Builder.Build.Built_pipelined { engines; first; last; _ },
      Builder.Buffer_alloc.Plan_pipelined plan ) ->
    (board, engines, plan, first, last)
  | _ -> Alcotest.fail "expected pipelined first block"

let test_pipelined_throughput_is_bottleneck () =
  let board, engines, plan, first, last = pipelined_setup () in
  let r =
    Mccm.Pipelined_model.evaluate ~model:res50 ~board ~engines ~plan ~first
      ~last ~input_on_chip:false ~output_on_chip:true ()
  in
  let max_busy =
    Array.fold_left Float.max 0.0 r.Mccm.Pipelined_model.busy_s_per_engine
  in
  checkf "bottleneck = max busy" max_busy r.Mccm.Pipelined_model.bottleneck_s;
  checkb "latency >= bottleneck" true
    (r.Mccm.Pipelined_model.latency_s
    >= r.Mccm.Pipelined_model.bottleneck_s -. 1e-12)

let test_pipelined_eq2_uniform_round () =
  (* Hand-built single round with uniform tiles: Eq. 2 reduces to
     (tiles + ces - 1) x tile_time. *)
  let layers =
    List.init 3 (fun i ->
        Cnn.Layer.v ~index:i ~name:(Printf.sprintf "u%d" i)
          ~kind:Cnn.Layer.Standard
          ~in_shape:(Cnn.Shape.v ~channels:8 ~height:16 ~width:16)
          ~out_channels:8 ~kernel:3 ~stride:1 ~padding:1 ())
  in
  let model = Cnn.Model.v ~name:"Uniform" ~abbreviation:"U" ~layers in
  let board = Platform.Board.zcu102 in
  let engines =
    Array.init 3 (fun i ->
        Engine.Ce.v ~id:(i + 1) ~pes:4
          ~parallelism:
            (Engine.Parallelism.three_d ~filters:1 ~height:4 ~width:1)
          ~dataflow:Engine.Dataflow.Weight_stationary)
  in
  let plan =
    {
      Builder.Buffer_alloc.tiles_per_image = 4;
      width_split = 1;
      tile_rows = [| 4; 4; 4 |];
      fm_tile_bytes = [| 0; 0; 0 |];
      weights_retained = [| true; true; true |];
      weights_staging_bytes = 0;
    }
  in
  let r =
    Mccm.Pipelined_model.evaluate ~model ~board ~engines ~plan ~first:0 ~last:2
      ~input_on_chip:true ~output_on_chip:true ()
  in
  let tile_cyc = Engine.Ce.tile_cycles engines.(0) (List.hd layers) ~rows:4 in
  let expected_cycles = (4 + 3 - 1) * tile_cyc in
  checkf "Eq. 2 skewed pipeline"
    (Platform.Board.cycles_to_seconds board expected_cycles)
    r.Mccm.Pipelined_model.compute_s

let test_pipelined_weight_reload () =
  (* Unretained weights cost tiles x weights (Eq. 7). *)
  let board, engines, plan, first, last = pipelined_setup () in
  let all_streamed =
    {
      plan with
      Builder.Buffer_alloc.weights_retained =
        Array.map (fun _ -> false) plan.Builder.Buffer_alloc.weights_retained;
    }
  in
  let all_retained =
    {
      plan with
      Builder.Buffer_alloc.weights_retained =
        Array.map (fun _ -> true) plan.Builder.Buffer_alloc.weights_retained;
    }
  in
  let eval p =
    (Mccm.Pipelined_model.evaluate ~model:res50 ~board ~engines ~plan:p ~first
       ~last ~input_on_chip:true ~output_on_chip:true ())
      .Mccm.Pipelined_model.accesses
  in
  let streamed = eval all_streamed and retained = eval all_retained in
  let bpe = 2 in
  check "retained = one access per weight"
    (Cnn.Model.weights_in_range res50 ~first ~last * bpe)
    retained.Mccm.Access.weights_bytes;
  checkb "streaming costs more" true
    (streamed.Mccm.Access.weights_bytes >= retained.Mccm.Access.weights_bytes)

(* --------------------------------------------------------- Evaluate *)

let test_evaluate_feasible_metrics () =
  let m =
    Mccm.Evaluate.metrics res50 Platform.Board.zcu102
      (Arch.Baselines.segmented ~ces:4 res50)
  in
  checkb "feasible" true m.Mccm.Metrics.feasible;
  checkb "positive latency" true (m.Mccm.Metrics.latency_s > 0.0);
  checkb "positive throughput" true (m.Mccm.Metrics.throughput_ips > 0.0);
  checkb "buffers fit board" true
    (m.Mccm.Metrics.buffer_bytes
    <= Platform.Board.zcu102.Platform.Board.bram_bytes)

let test_evaluate_throughput_vs_latency () =
  (* With coarse pipelining, throughput exceeds 1/latency (stages overlap
     on different inputs); the paper stresses they are not inverses. *)
  let m =
    Mccm.Evaluate.metrics res50 Platform.Board.zcu102
      (Arch.Baselines.segmented ~ces:6 res50)
  in
  checkb "throughput > 1/latency" true
    (m.Mccm.Metrics.throughput_ips > 1.0 /. m.Mccm.Metrics.latency_s)

let test_evaluate_accesses_floor () =
  (* Nothing can access less than weights + model input + output. *)
  List.iter
    (fun (_, archi) ->
      let m = Mccm.Evaluate.metrics res50 Platform.Board.zcu102 archi in
      let bpe = 2 in
      let floor =
        (Cnn.Model.total_weights res50
        + Cnn.Shape.elements (Cnn.Model.input_shape res50)
        + Cnn.Model.output_elements res50)
        * bpe
      in
      checkb "accesses >= floor" true (Mccm.Metrics.accesses_bytes m >= floor))
    (Arch.Baselines.all_instances res50)

let test_evaluate_breakdown_consistency () =
  let e =
    Mccm.Evaluate.evaluate res50 Platform.Board.zc706
      (Arch.Baselines.segmented ~ces:4 res50)
  in
  let b = e.Mccm.Evaluate.breakdown in
  check "4 segments" 4 (List.length b.Mccm.Breakdown.segments);
  check "accesses add up"
    (Mccm.Metrics.accesses_bytes e.Mccm.Evaluate.metrics)
    (Mccm.Access.total b.Mccm.Breakdown.accesses);
  List.iter
    (fun (s : Mccm.Breakdown.segment) ->
      checkb "utilization in (0,1]" true
        (s.Mccm.Breakdown.utilization > 0.0
        && s.Mccm.Breakdown.utilization <= 1.0 +. 1e-9))
    b.Mccm.Breakdown.segments

let test_evaluate_segrr_segments_are_rounds () =
  let e =
    Mccm.Evaluate.evaluate res50 Platform.Board.zc706
      (Arch.Baselines.segmented_rr ~ces:2 res50)
  in
  (* 53 layers / 2 CEs -> 27 rounds reported as segments (Fig. 6a). *)
  check "27 segments" 27
    (List.length e.Mccm.Evaluate.breakdown.Mccm.Breakdown.segments)

let test_evaluate_initiation_interval () =
  let e =
    Mccm.Evaluate.evaluate res50 Platform.Board.zcu102
      (Arch.Baselines.segmented ~ces:4 res50)
  in
  checkf "ii = 1/throughput"
    (1.0 /. e.Mccm.Evaluate.metrics.Mccm.Metrics.throughput_ips)
    e.Mccm.Evaluate.initiation_interval_s;
  checkb "ii <= latency" true
    (e.Mccm.Evaluate.initiation_interval_s
    <= e.Mccm.Evaluate.metrics.Mccm.Metrics.latency_s +. 1e-12)

let test_evaluate_deterministic () =
  let run () =
    Mccm.Evaluate.metrics mobv2 Platform.Board.vcu110
      (Arch.Baselines.hybrid ~ces:6 mobv2)
  in
  let a = run () and b = run () in
  checkf "same latency" a.Mccm.Metrics.latency_s b.Mccm.Metrics.latency_s;
  check "same accesses" (Mccm.Metrics.accesses_bytes a)
    (Mccm.Metrics.accesses_bytes b)

(* --------------------------------------------------------- Roofline *)

let test_roofline_bounds_achieved () =
  (* The model's throughput can never exceed the roofline ceiling. *)
  List.iter
    (fun (_, archi) ->
      let board = Platform.Board.zc706 in
      let m = Mccm.Evaluate.metrics res50 board archi in
      let r = Mccm.Roofline.analyze res50 board m in
      checkb "efficiency <= 1" true (r.Mccm.Roofline.efficiency <= 1.0 +. 1e-9);
      checkb "positive AI" true (r.Mccm.Roofline.arithmetic_intensity > 0.0))
    (Arch.Baselines.all_instances res50)

let test_roofline_classification () =
  (* SegmentedRR/2 on ZC706 reloads weights heavily: it must classify as
     memory-bound; the same design on a 19.2 GB/s board with retained
     weights is compute-bound. *)
  let m_small =
    Mccm.Evaluate.metrics res50 Platform.Board.zc706
      (Arch.Baselines.segmented_rr ~ces:2 res50)
  in
  let r_small = Mccm.Roofline.analyze res50 Platform.Board.zc706 m_small in
  checkb "ZC706 SegRR memory-bound" true
    (r_small.Mccm.Roofline.bound = Mccm.Roofline.Memory_bound);
  let m_big =
    Mccm.Evaluate.metrics res50 Platform.Board.zcu102
      (Arch.Baselines.segmented ~ces:4 res50)
  in
  let r_big = Mccm.Roofline.analyze res50 Platform.Board.zcu102 m_big in
  checkb "ZCU102 Segmented compute-bound" true
    (r_big.Mccm.Roofline.bound = Mccm.Roofline.Compute_bound)

let test_roofline_machine_balance () =
  (* ZC706: 900 DSPs x 200 MHz / 3.2 GB/s = 56.25 MACs per byte. *)
  let m =
    Mccm.Evaluate.metrics res50 Platform.Board.zc706
      (Arch.Baselines.segmented ~ces:4 res50)
  in
  let r = Mccm.Roofline.analyze res50 Platform.Board.zc706 m in
  checkf "balance" 56.25 r.Mccm.Roofline.machine_balance

(* ------------------------------------------------------- properties *)

let instance_gen =
  QCheck2.Gen.(
    let* ces = int_range 2 11 in
    let* style = oneofl [ `Seg; `Rr; `Hyb ] in
    return (ces, style))

let arch_of (ces, style) model =
  match style with
  | `Seg -> Arch.Baselines.segmented ~ces model
  | `Rr -> Arch.Baselines.segmented_rr ~ces model
  | `Hyb -> Arch.Baselines.hybrid ~ces model

let prop_metrics_positive =
  QCheck2.Test.make ~name:"metrics strictly positive on every baseline"
    ~count:30 instance_gen (fun inst ->
      let m =
        Mccm.Evaluate.metrics mobv2 Platform.Board.vcu108 (arch_of inst mobv2)
      in
      m.Mccm.Metrics.latency_s > 0.0
      && m.Mccm.Metrics.throughput_ips > 0.0
      && m.Mccm.Metrics.buffer_bytes > 0
      && Mccm.Metrics.accesses_bytes m > 0)

let prop_latency_bounded_by_serial =
  QCheck2.Test.make
    ~name:"latency never exceeds fully serial single-PE execution" ~count:20
    instance_gen (fun inst ->
      let board = Platform.Board.vcu108 in
      let m = Mccm.Evaluate.metrics mobv2 board (arch_of inst mobv2) in
      let serial =
        Platform.Board.cycles_to_seconds board (Cnn.Model.total_macs mobv2)
        +. Platform.Board.bytes_to_seconds board (Mccm.Metrics.accesses_bytes m)
      in
      m.Mccm.Metrics.latency_s <= serial)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_metrics_positive; prop_latency_bounded_by_serial ]

let () =
  Alcotest.run "mccm"
    [
      ("access", [ Alcotest.test_case "arithmetic" `Quick test_access_arithmetic ]);
      ("metrics", [ Alcotest.test_case "better" `Quick test_metrics_better ]);
      ( "single_ce",
        [
          Alcotest.test_case "ideal accesses" `Quick test_single_ideal_accesses;
          Alcotest.test_case "spill monotone" `Quick test_single_spill_monotone;
          Alcotest.test_case "latency bounds" `Quick
            test_single_latency_is_per_layer_max;
          Alcotest.test_case "inter-segment input" `Quick
            test_single_interseg_input;
          Alcotest.test_case "Eq.6 miniature: fits" `Quick
            test_eq6_miniature_fits;
          Alcotest.test_case "Eq.6 miniature: streams" `Quick
            test_eq6_miniature_ifm_streams;
          Alcotest.test_case "Eq.6 miniature: interseg" `Quick
            test_eq6_miniature_interseg_input;
          Alcotest.test_case "Eq.9 interseg tradeoff" `Quick
            test_eq9_interseg_tradeoff;
        ] );
      ( "pipelined",
        [
          Alcotest.test_case "throughput bottleneck" `Quick
            test_pipelined_throughput_is_bottleneck;
          Alcotest.test_case "Eq.2 uniform round" `Quick
            test_pipelined_eq2_uniform_round;
          Alcotest.test_case "weight reload" `Quick test_pipelined_weight_reload;
        ] );
      ( "roofline",
        [
          Alcotest.test_case "bounds achieved" `Quick
            test_roofline_bounds_achieved;
          Alcotest.test_case "classification" `Quick
            test_roofline_classification;
          Alcotest.test_case "machine balance" `Quick
            test_roofline_machine_balance;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "feasible metrics" `Quick
            test_evaluate_feasible_metrics;
          Alcotest.test_case "throughput vs latency" `Quick
            test_evaluate_throughput_vs_latency;
          Alcotest.test_case "accesses floor" `Quick test_evaluate_accesses_floor;
          Alcotest.test_case "breakdown consistency" `Quick
            test_evaluate_breakdown_consistency;
          Alcotest.test_case "SegRR segments are rounds" `Quick
            test_evaluate_segrr_segments_are_rounds;
          Alcotest.test_case "initiation interval" `Quick
            test_evaluate_initiation_interval;
          Alcotest.test_case "deterministic" `Quick test_evaluate_deterministic;
        ] );
      ("properties", properties);
    ]
