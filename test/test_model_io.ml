(* Tests for the textual CNN model format. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let tiny =
  {|
# a comment
cnn TinyNet Tny
input 3x32x32
conv 16 k=3 s=1
dw k=3 s=2
pw 32
pw 32 extra=16384
pool s=2
fc 10
|}

let parse_ok text =
  match Cnn.Model_io.of_string text with
  | Ok m -> m
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_tiny () =
  let m = parse_ok tiny in
  Alcotest.(check string) "name" "TinyNet" m.Cnn.Model.name;
  Alcotest.(check string) "abbrev" "Tny" m.Cnn.Model.abbreviation;
  check "5 layers" 5 (Cnn.Model.num_layers m);
  let l0 = Cnn.Model.layer m 0 in
  checkb "conv kind" true (l0.Cnn.Layer.kind = Cnn.Layer.Standard);
  check "out channels" 16 l0.Cnn.Layer.out_channels;
  let l1 = Cnn.Model.layer m 1 in
  checkb "dw kind" true (l1.Cnn.Layer.kind = Cnn.Layer.Depthwise);
  check "dw stride" 2 l1.Cnn.Layer.stride;
  let l3 = Cnn.Model.layer m 3 in
  check "extra" 16384 l3.Cnn.Layer.extra_resident_elements;
  let l4 = Cnn.Model.layer m 4 in
  checkb "fc kind" true (l4.Cnn.Layer.kind = Cnn.Layer.Fully_connected);
  (* fc sees the flattened, pooled feature map. *)
  check "fc input flattened" 1 l4.Cnn.Layer.in_shape.Cnn.Shape.height

let test_parse_shapes_chain () =
  let m = parse_ok tiny in
  (* input 32x32 -> conv (same) 32 -> dw s2 -> 16 -> pw 16 -> pool -> 8. *)
  let l3 = Cnn.Model.layer m 3 in
  check "pw at 16x16" 16 l3.Cnn.Layer.in_shape.Cnn.Shape.height

let test_parse_branch_from () =
  let m =
    parse_ok
      {|
cnn Branchy Br
input 8x16x16
conv 16 s=2 k=1 name=proj
conv 8 k=3 name=c1 from=8x16x16
|}
  in
  let c1 = Cnn.Model.layer m 1 in
  (* from= reads the explicit shape, not proj's output. *)
  check "branch input height" 16 c1.Cnn.Layer.in_shape.Cnn.Shape.height;
  check "branch input channels" 8 c1.Cnn.Layer.in_shape.Cnn.Shape.channels

let test_parse_set () =
  let m =
    parse_ok
      {|
cnn Setty St
input 3x8x8
conv 4
set 12x8x8
pw 6
|}
  in
  check "set channels" 12
    (Cnn.Model.layer m 1).Cnn.Layer.in_shape.Cnn.Shape.channels

let test_parse_errors () =
  let bad text expect_fragment =
    match Cnn.Model_io.of_string text with
    | Ok _ -> Alcotest.failf "expected failure for %s" expect_fragment
    | Error e ->
      let contains =
        let n = String.length expect_fragment and h = String.length e in
        let rec go i =
          i + n <= h && (String.sub e i n = expect_fragment || go (i + 1))
        in
        go 0
      in
      checkb (Printf.sprintf "error mentions %s: %s" expect_fragment e) true
        contains
  in
  bad "input 3x8x8\nconv 4\n" "header";
  bad "cnn X Y\nconv 4\n" "before 'input'";
  bad "cnn X Y\ninput 3x8x8\nwobble 4\n" "unknown keyword";
  bad "cnn X Y\ninput 3x8\nconv 4\n" "malformed shape";
  bad "cnn X Y\ninput 3x8x8\ndw 4\n" "no output-channel";
  bad "cnn X Y\ninput 3x8x8\nconv banana\n" "malformed output channels";
  bad "cnn X Y\ninput 3x8x8\n" "no layers"

let test_round_trip_zoo () =
  List.iter
    (fun m ->
      let text = Cnn.Model_io.to_string m in
      match Cnn.Model_io.of_string text with
      | Error e -> Alcotest.failf "%s: %s" m.Cnn.Model.name e
      | Ok m' ->
        check
          (m.Cnn.Model.name ^ " layers")
          (Cnn.Model.num_layers m) (Cnn.Model.num_layers m');
        check
          (m.Cnn.Model.name ^ " weights")
          (Cnn.Model.total_weights m)
          (Cnn.Model.total_weights m');
        check (m.Cnn.Model.name ^ " macs") (Cnn.Model.total_macs m)
          (Cnn.Model.total_macs m');
        List.iter2
          (fun (a : Cnn.Layer.t) (b : Cnn.Layer.t) ->
            checkb "same in_shape" true
              (Cnn.Shape.equal a.Cnn.Layer.in_shape b.Cnn.Layer.in_shape);
            checkb "same kind" true (a.Cnn.Layer.kind = b.Cnn.Layer.kind);
            check "same extra" a.Cnn.Layer.extra_resident_elements
              b.Cnn.Layer.extra_resident_elements)
          (Cnn.Model.layers_in_range m ~first:0
             ~last:(Cnn.Model.num_layers m - 1))
          (Cnn.Model.layers_in_range m' ~first:0
             ~last:(Cnn.Model.num_layers m' - 1)))
    (Cnn.Model_zoo.extended ())

let test_print_parse_print_fixpoint () =
  (* to_string must be a fixpoint under parsing: the printed form of the
     reparsed model is byte-identical.  This pins the printer (pool
     strides, set-shape escape hatches, residual annotations) far more
     tightly than comparing aggregate counts. *)
  List.iter
    (fun m ->
      let t1 = Cnn.Model_io.to_string m in
      match Cnn.Model_io.of_string t1 with
      | Error e -> Alcotest.failf "%s: %s" m.Cnn.Model.name e
      | Ok m' ->
        Alcotest.(check string) m.Cnn.Model.name t1 (Cnn.Model_io.to_string m'))
    (Cnn.Model_zoo.extended ())

let test_round_trip_synthetic () =
  (* Generator-produced models exercise shapes the zoo never does (1x1
     spatial chains, stray strides); they must all serialize exactly,
     since the validation corpus depends on it. *)
  let rng = Util.Prng.create ~seed:2024L in
  for i = 0 to 49 do
    let m = Validate.Gen.synthetic_model rng ~index:i in
    let t1 = Cnn.Model_io.to_string m in
    match Cnn.Model_io.of_string t1 with
    | Error e -> Alcotest.failf "synthetic %d: %s" i e
    | Ok m' ->
      check
        (Printf.sprintf "synthetic %d macs" i)
        (Cnn.Model.total_macs m) (Cnn.Model.total_macs m');
      Alcotest.(check string)
        (Printf.sprintf "synthetic %d fixpoint" i)
        t1 (Cnn.Model_io.to_string m')
  done

let test_load_file_missing () =
  checkb "missing file" true
    (Result.is_error (Cnn.Model_io.load_file "/nonexistent/model.cnn"))

let test_extended_zoo () =
  check "8 models" 8 (List.length (Cnn.Model_zoo.extended ()));
  let vgg = Cnn.Model_zoo.vgg16 () in
  check "VGG16 layers" 13 (Cnn.Model.num_layers vgg);
  (* Published conv weights: ~14.7M. *)
  checkb "VGG16 weights ballpark" true
    (Cnn.Model.total_weights vgg > 14_500_000
    && Cnn.Model.total_weights vgg < 15_000_000);
  (* Published conv MACs: ~15.3G. *)
  checkb "VGG16 MACs ballpark" true
    (Cnn.Model.total_macs vgg > 15_000_000_000
    && Cnn.Model.total_macs vgg < 15_800_000_000);
  let eff = Cnn.Model_zoo.efficientnet_b0 () in
  let mnas = Cnn.Model_zoo.mnasnet_a1 () in
  check "EffB0 layers" 49 (Cnn.Model.num_layers eff);
  check "MnasA1 layers" 49 (Cnn.Model.num_layers mnas);
  (* Published MAC counts: ~390M and ~312M. *)
  checkb "EffB0 MACs ballpark" true
    (Cnn.Model.total_macs eff > 360_000_000
    && Cnn.Model.total_macs eff < 410_000_000);
  checkb "MnasA1 MACs ballpark" true
    (Cnn.Model.total_macs mnas > 290_000_000
    && Cnn.Model.total_macs mnas < 330_000_000);
  checkb "lookup EffB0" true (Cnn.Model_zoo.by_abbreviation "effb0" <> None)

(* A parsed custom model must flow through the whole methodology. *)
let test_custom_model_end_to_end () =
  let m = parse_ok tiny in
  let archi = Arch.Baselines.segmented_rr ~ces:2 m in
  let metrics = Mccm.Evaluate.metrics m Platform.Board.zc706 archi in
  checkb "feasible" true metrics.Mccm.Metrics.feasible;
  checkb "positive throughput" true (metrics.Mccm.Metrics.throughput_ips > 0.0)

let () =
  Alcotest.run "model_io"
    [
      ( "parse",
        [
          Alcotest.test_case "tiny model" `Quick test_parse_tiny;
          Alcotest.test_case "shape chain" `Quick test_parse_shapes_chain;
          Alcotest.test_case "branch from=" `Quick test_parse_branch_from;
          Alcotest.test_case "set" `Quick test_parse_set;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "zoo models" `Quick test_round_trip_zoo;
          Alcotest.test_case "print-parse-print fixpoint" `Quick
            test_print_parse_print_fixpoint;
          Alcotest.test_case "synthetic models" `Quick
            test_round_trip_synthetic;
          Alcotest.test_case "missing file" `Quick test_load_file_missing;
        ] );
      ( "extended zoo",
        [
          Alcotest.test_case "models" `Quick test_extended_zoo;
          Alcotest.test_case "end to end" `Quick test_custom_model_end_to_end;
        ] );
    ]
