(* Unit and property tests for the Mccm_obs observability library:
   disabled hooks are no-ops, counters are exact under parallel
   increments from several domains, snapshot merging is
   order-insensitive, span nesting is well-formed, the Chrome-trace
   export matches a golden document, and the evaluator's obs counters
   agree with Eval_session's own statistics. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* Instrumentation state is process-global: every test starts and ends
   from a clean, disabled registry. *)
let reset_off () =
  Mccm_obs.disable ();
  Mccm_obs.reset ()

let counter_value name =
  let s = Mccm_obs.Metric.snapshot () in
  Option.value ~default:0 (List.assoc_opt name s.Mccm_obs.Metric.counters)

(* --------------------------------------------------------- disabled *)

let test_disabled_noop () =
  reset_off ();
  let c = Mccm_obs.Metric.counter "obs.test.disabled" in
  Mccm_obs.Metric.incr c;
  Mccm_obs.Metric.add c 41;
  let r = Mccm_obs.span "obs.test.span" (fun () -> 42) in
  check "span returns its thunk's value" 42 r;
  check "counter untouched while disabled" 0
    (Mccm_obs.Metric.value c);
  check "no events recorded while disabled" 0
    (List.length (Mccm_obs.Span.events ()));
  let s = Mccm_obs.Metric.snapshot () in
  checkb "no span histogram while disabled" true
    (List.assoc_opt "span.obs.test.span" s.Mccm_obs.Metric.histograms = None)

(* --------------------------------------------------- counters exact *)

let prop_parallel_counters =
  QCheck2.Test.make ~count:20
    ~name:"counters exact under parallel increments"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 0 2000))
    (fun (domains, n) ->
      reset_off ();
      Mccm_obs.enable ();
      let c = Mccm_obs.Metric.counter "obs.test.parallel" in
      let spawned =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to n do
                  Mccm_obs.Metric.incr c
                done))
      in
      List.iter Domain.join spawned;
      Mccm_obs.disable ();
      let total = Mccm_obs.Metric.value c in
      reset_off ();
      total = domains * n)

(* ---------------------------------------------------- merge algebra *)

(* Snapshots built directly from sorted assoc lists over a fixed name
   pool; histogram fields derive from the sample list.  [gen_snapshot]
   uses small integers so sums stay exact and associativity can be
   checked with structural equality; [gen_wide_snapshot] uses values
   spread over the whole finite double range to exercise the %.17g
   serialization. *)
let gen_snapshot_with value =
  let open QCheck2.Gen in
  let assoc_of pool gen_v =
    flatten_l
      (List.map
         (fun name ->
           let* keep = bool in
           if keep then map (fun v -> Some (name, v)) gen_v
           else return None)
         pool)
    |> map (List.filter_map Fun.id)
  in
  let gen_hist =
    let* samples = list_size (int_range 0 6) value in
    let sorted = List.sort compare samples in
    return
      {
        Mccm_obs.Metric.count = List.length samples;
        sum = List.fold_left ( +. ) 0.0 samples;
        min = (match sorted with [] -> infinity | x :: _ -> x);
        max =
          (match List.rev sorted with [] -> neg_infinity | x :: _ -> x);
        samples = Array.of_list sorted;
      }
  in
  let* counters = assoc_of [ "a"; "b"; "c"; "d" ] (int_range 0 100) in
  let* gauges = assoc_of [ "g1"; "g2"; "g3" ] value in
  let* histograms = assoc_of [ "h1"; "h2"; "h3" ] gen_hist in
  return { Mccm_obs.Metric.counters; gauges; histograms }

let gen_snapshot =
  gen_snapshot_with QCheck2.Gen.(map float_of_int (int_range 0 20))

let gen_wide_snapshot =
  (* finite but spanning ~600 orders of magnitude, either sign *)
  gen_snapshot_with
    QCheck2.Gen.(
      map
        (fun (m, e) -> Float.ldexp m e)
        (pair (float_range (-1.0) 1.0) (int_range (-300) 300)))

let prop_merge_commutative =
  QCheck2.Test.make ~name:"snapshot merge is commutative"
    QCheck2.Gen.(pair gen_snapshot gen_snapshot)
    (fun (a, b) -> Mccm_obs.Metric.merge a b = Mccm_obs.Metric.merge b a)

let prop_merge_associative =
  QCheck2.Test.make ~name:"snapshot merge is associative"
    QCheck2.Gen.(triple gen_snapshot gen_snapshot gen_snapshot)
    (fun (a, b, c) ->
      Mccm_obs.Metric.(merge (merge a b) c = merge a (merge b c)))

(* ----------------------------------------------- snapshot round trip *)

(* The stats protocol op ships Metric.to_json over the wire and clients
   decode with of_json; bit-for-bit equality end to end needs the codec
   to be an exact inverse, including through the string layer. *)
let prop_json_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"snapshot JSON round-trips exactly"
    gen_wide_snapshot
    (fun s ->
      let j = Mccm_obs.Metric.to_json s in
      Mccm_obs.Metric.of_json j = Ok s
      &&
      match Util.Json.parse (Util.Json.to_string j) with
      | Ok j' -> Mccm_obs.Metric.of_json j' = Ok s
      | Error _ -> false)

let prop_delta_merge_inverse =
  (* For a monotone pair (later = merge earlier growth), delta is the
     exact inverse of merge — what lets a poller turn two absolute
     stats replies into an interval snapshot.  Small integer values so
     the sum arithmetic is float-exact. *)
  QCheck2.Test.make ~count:500 ~name:"merge earlier (delta later earlier) = later"
    QCheck2.Gen.(pair gen_snapshot gen_snapshot)
    (fun (earlier, growth) ->
      let later = Mccm_obs.Metric.merge earlier growth in
      Mccm_obs.Metric.merge earlier (Mccm_obs.Metric.delta later earlier)
      = later)

(* ------------------------------------------------------ span nesting *)

type tree = T of tree list

let gen_tree =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then return (T [])
           else
             let* width = int_range 0 3 in
             let* kids = list_size (return width) (self (n / 4)) in
             return (T kids)))

let rec nodes (T kids) = 1 + List.fold_left (fun a t -> a + nodes t) 0 kids

let prop_span_nesting =
  QCheck2.Test.make ~count:50 ~name:"span events are properly nested"
    gen_tree
    (fun tree ->
      reset_off ();
      Mccm_obs.enable ~tracing:true ();
      let rec walk depth (T kids) =
        Mccm_obs.span ~cat:"test"
          (Printf.sprintf "obs.test.n%d" depth)
          (fun () -> List.iter (walk (depth + 1)) kids)
      in
      walk 0 tree;
      let events = Mccm_obs.Span.events () in
      Mccm_obs.disable ();
      let well_nested =
        List.for_all
          (fun (a : Mccm_obs.Span.event) ->
            List.for_all
              (fun (b : Mccm_obs.Span.event) ->
                a == b
                ||
                let s1 = a.Mccm_obs.Span.ts_ns
                and e1 = a.Mccm_obs.Span.ts_ns + a.Mccm_obs.Span.dur_ns in
                let s2 = b.Mccm_obs.Span.ts_ns
                and e2 = b.Mccm_obs.Span.ts_ns + b.Mccm_obs.Span.dur_ns in
                e1 <= s2 || e2 <= s1
                || (s1 <= s2 && e2 <= e1)
                || (s2 <= s1 && e1 <= e2))
              events)
          events
      in
      let ok =
        List.length events = nodes tree
        && well_nested
        && List.exists (fun e -> e.Mccm_obs.Span.depth = 0) events
      in
      reset_off ();
      ok)

(* ---------------------------------------------------- histogram/gauge *)

let test_histogram_snapshot () =
  reset_off ();
  Mccm_obs.enable ();
  let h = Mccm_obs.Metric.histogram "obs.test.hist" in
  List.iter
    (fun v -> Mccm_obs.Metric.observe h v)
    [ 3.0; 1.0; 4.0; 2.0; 5.0 ];
  let s = Mccm_obs.Metric.snapshot () in
  Mccm_obs.disable ();
  let hs = List.assoc "obs.test.hist" s.Mccm_obs.Metric.histograms in
  check "count" 5 hs.Mccm_obs.Metric.count;
  checkf "sum" 15.0 hs.Mccm_obs.Metric.sum;
  checkf "min" 1.0 hs.Mccm_obs.Metric.min;
  checkf "max" 5.0 hs.Mccm_obs.Metric.max;
  checkb "samples sorted" true
    (hs.Mccm_obs.Metric.samples = [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  checkf "median" 3.0 (Mccm_obs.Metric.quantile hs ~q:0.5);
  reset_off ()

let test_gauge_update_max () =
  reset_off ();
  Mccm_obs.enable ();
  let g = Mccm_obs.Metric.gauge "obs.test.gauge" in
  Mccm_obs.Metric.update_max g 2.0;
  Mccm_obs.Metric.update_max g 1.0;
  Mccm_obs.Metric.update_max g 5.0;
  let s = Mccm_obs.Metric.snapshot () in
  Mccm_obs.disable ();
  checkf "best-so-far" 5.0 (List.assoc "obs.test.gauge" s.Mccm_obs.Metric.gauges);
  reset_off ()

(* --------------------------------------------------- flight recorder *)

let test_flight_only_gating () =
  reset_off ();
  Mccm_obs.Flight.configure ();
  Mccm_obs.Flight.enable ();
  checkb "flight armed" true (Mccm_obs.Flight.enabled ());
  (* arming the recorder must not wake metrics or spans up *)
  let c = Mccm_obs.Metric.counter "obs.test.flightgate" in
  Mccm_obs.Metric.incr c;
  check "metrics still off" 0 (Mccm_obs.Metric.value c);
  ignore (Mccm_obs.span "obs.test.flightspan" (fun () -> 0));
  check "no span events" 0 (List.length (Mccm_obs.Span.events ()));
  Mccm_obs.Flight.record ~rid:"r" ~op:"ping" ~worker:(-1) ~queue_ns:0
    ~eval_ns:0 ~bytes_in:0 ~bytes_out:0 ~outcome:"ok";
  check "recorded" 1 (List.length (Mccm_obs.Flight.dump ()));
  (* enable preserves the flight bit; disable clears every facet *)
  Mccm_obs.enable ();
  checkb "stats enable keeps flight armed" true (Mccm_obs.Flight.enabled ());
  Mccm_obs.disable ();
  checkb "disable clears flight" false (Mccm_obs.Flight.enabled ());
  Mccm_obs.Flight.configure ();
  reset_off ()

let test_flight_concurrent_exact () =
  reset_off ();
  Mccm_obs.Flight.configure ~capacity:64 ~slow_ms:1e12 ~slow_keep:4 ();
  Mccm_obs.Flight.enable ();
  let domains = 4 and per = 32 in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Mccm_obs.Flight.record
                ~rid:(Printf.sprintf "d%d-%d" d i)
                ~op:"evaluate" ~worker:d ~queue_ns:0 ~eval_ns:i ~bytes_in:1
                ~bytes_out:1 ~outcome:"ok"
            done))
  in
  List.iter Domain.join spawned;
  let dump = Mccm_obs.Flight.dump () in
  Mccm_obs.Flight.disable ();
  (* per-domain rings are private, so a quiescent dump is exact *)
  check "every record present" (domains * per) (List.length dump);
  check "lifetime total" (domains * per) (Mccm_obs.Flight.total ());
  let rec mono = function
    | (a : Mccm_obs.Flight.record) :: (b :: _ as tl) ->
      a.Mccm_obs.Flight.t_ns <= b.Mccm_obs.Flight.t_ns && mono tl
    | _ -> true
  in
  checkb "sorted by completion time" true (mono dump);
  Mccm_obs.Flight.configure ();
  reset_off ()

let test_flight_slow_retention () =
  reset_off ();
  Mccm_obs.Flight.configure ~capacity:4 ~slow_ms:30.0 ~slow_keep:8 ();
  Mccm_obs.Flight.enable ();
  for i = 1 to 50 do
    Mccm_obs.Flight.record ~rid:(string_of_int i) ~op:"sleep" ~worker:0
      ~queue_ns:0 ~eval_ns:(i * 1_000_000) ~bytes_in:0 ~bytes_out:0
      ~outcome:"ok"
  done;
  let dump = Mccm_obs.Flight.dump () in
  Mccm_obs.Flight.disable ();
  (* the ring has wrapped down to 47..50, but the slow buffer (>= 30 ms)
     retained the 8 worst eval times by replace-min: 43..50 survive,
     deduplicated against the ring *)
  check "ring + slow, deduplicated" 8 (List.length dump);
  let rids =
    List.sort compare
      (List.map (fun r -> int_of_string r.Mccm_obs.Flight.rid) dump)
  in
  checkb "worst offenders retained" true
    (rids = [ 43; 44; 45; 46; 47; 48; 49; 50 ]);
  check "lifetime total counts dropped records" 50 (Mccm_obs.Flight.total ());
  Mccm_obs.Flight.configure ();
  reset_off ()

(* ------------------------------------------------- summary rendering *)

(* pp sorts every block by name before rendering, so the summary is one
   deterministic string no matter how the snapshot was assembled; this
   golden pins both the sorting and the exact layout. *)
let test_golden_summary () =
  let hist samples =
    let sorted = List.sort compare samples in
    {
      Mccm_obs.Metric.count = List.length samples;
      sum = List.fold_left ( +. ) 0.0 samples;
      min = List.hd sorted;
      max = List.nth sorted (List.length sorted - 1);
      samples = Array.of_list sorted;
    }
  in
  let s =
    {
      (* deliberately unsorted input *)
      Mccm_obs.Metric.counters = [ ("z.second", 2); ("a.first", 40) ];
      gauges = [ ("g.late", 7.5); ("g.early", 1.25) ];
      histograms =
        [ ("h.tail", hist [ 0.004; 0.002 ]); ("h.head", hist [ 0.5 ]) ];
    }
  in
  let expected =
    "counters & gauges\n\
     +----------+-------+\n\
     |  metric  | value |\n\
     +----------+-------+\n\
     | a.first  |    40 |\n\
     | z.second |     2 |\n\
     | g.early  |  1.25 |\n\
     | g.late   |   7.5 |\n\
     +----------+-------+\n\
     span durations\n\
     +--------+-------+------------+------------+------------+------------+------------+\n\
     |  span  | count |   total    |    p50     |    p95     |    p99     |    max     |\n\
     +--------+-------+------------+------------+------------+------------+------------+\n\
     | h.head |     1 | 500.000 ms | 500.000 ms | 500.000 ms | 500.000 ms | 500.000 ms |\n\
     | h.tail |     2 |   6.000 ms |   3.000 ms |   3.900 ms |   3.980 ms |   4.000 ms |\n\
     +--------+-------+------------+------------+------------+------------+------------+"
  in
  Alcotest.(check string)
    "deterministic sorted summary" expected
    (Format.asprintf "%a" Mccm_obs.Metric.pp s)

(* ------------------------------------------------------- Prometheus *)

let test_prometheus_render () =
  let s =
    {
      Mccm_obs.Metric.counters = [ ("serve.requests", 5) ];
      gauges = [ ("serve.queue.depth", 3.0) ];
      histograms =
        [
          ( "serve.evaluate.latency",
            {
              Mccm_obs.Metric.count = 2;
              sum = 0.75;
              min = 0.25;
              max = 0.5;
              samples = [| 0.25; 0.5 |];
            } );
        ];
    }
  in
  let text =
    Mccm_obs.Prometheus.render ~extra_counters:[ ("completed", 7) ]
      ~extra_gauges:[ ("uptime_seconds", 12.5) ]
      s
  in
  let has line = List.mem line (String.split_on_char '\n' text) in
  checkb "counter typed" true (has "# TYPE mccm_serve_requests counter");
  checkb "counter value" true (has "mccm_serve_requests 5");
  checkb "extra counter" true (has "mccm_completed 7");
  checkb "gauge" true (has "mccm_serve_queue_depth 3");
  checkb "extra gauge" true (has "mccm_uptime_seconds 12.5");
  checkb "summary type" true
    (has "# TYPE mccm_serve_evaluate_latency summary");
  (* 0.375 = (0.25 + 0.5) / 2 is exactly representable, so the value
     prints cleanly; the label must be the literal "0.5", not a %.17g
     rendering of the float *)
  checkb "quantile label is literal" true
    (has "mccm_serve_evaluate_latency{quantile=\"0.5\"} 0.375");
  checkb "sum" true (has "mccm_serve_evaluate_latency_sum 0.75");
  checkb "count" true (has "mccm_serve_evaluate_latency_count 2");
  checkb "ends with newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n')

(* ------------------------------------------------------ Chrome trace *)

let test_golden_chrome_trace () =
  let events =
    [
      {
        Mccm_obs.Span.name = "explore";
        cat = "cli";
        ts_ns = 1_000;
        dur_ns = 5_500;
        tid = 0;
        depth = 0;
        args = [];
      };
      {
        Mccm_obs.Span.name = "eval";
        cat = "mccm";
        ts_ns = 2_500;
        dur_ns = 1_250;
        tid = 0;
        depth = 1;
        args = [ ("designs", "3") ];
      };
    ]
  in
  let expected =
    "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n\
     {\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": 1.000, \"dur\": \
     5.500, \"name\": \"explore\", \"cat\": \"cli\"},\n\
     {\"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": 2.500, \"dur\": \
     1.250, \"name\": \"eval\", \"cat\": \"mccm\", \"args\": \
     {\"designs\": \"3\"}}\n\
     ]}\n"
  in
  Alcotest.(check string)
    "golden trace document" expected
    (Mccm_obs.Chrome_trace.to_string events)

(* ------------------------------------------- evaluator counter cross *)

let test_session_counters_match () =
  reset_off ();
  Mccm_obs.enable ();
  let model = Cnn.Model_zoo.mobilenet_v2 () in
  let board = Platform.Board.vcu108 in
  let session = Mccm.Eval_session.create model board in
  let archs =
    [
      Arch.Baselines.segmented ~ces:2 model;
      Arch.Baselines.segmented ~ces:3 model;
      Arch.Baselines.hybrid ~ces:4 model;
      Arch.Baselines.segmented ~ces:2 model (* repeat: arch-table hit *);
    ]
  in
  List.iter (fun a -> ignore (Mccm.Eval_session.metrics session a)) archs;
  let st = Mccm.Eval_session.stats session in
  Mccm_obs.disable ();
  check "evaluations" st.Mccm.Eval_session.evaluations
    (counter_value "session.evaluations");
  check "arch hits" st.Mccm.Eval_session.arch_hits
    (counter_value "session.arch.hit");
  check "arch misses"
    (st.Mccm.Eval_session.evaluations - st.Mccm.Eval_session.arch_hits)
    (counter_value "session.arch.miss");
  let sh, sm = st.Mccm.Eval_session.seg_single in
  check "single-CE segment hits" sh (counter_value "seg.single.hit");
  check "single-CE segment misses" sm (counter_value "seg.single.miss");
  let ph, pm = st.Mccm.Eval_session.seg_pipelined in
  check "pipelined segment hits" ph (counter_value "seg.pipelined.hit");
  check "pipelined segment misses" pm (counter_value "seg.pipelined.miss");
  check "planning-floor hits" st.Mccm.Eval_session.plan_hits
    (counter_value "plan.floor.hit");
  check "planning-floor misses" st.Mccm.Eval_session.plan_misses
    (counter_value "plan.floor.miss");
  checkb "repeat arch actually hit" true
    (st.Mccm.Eval_session.arch_hits > 0);
  reset_off ()

(* ------------------------------------------------------------ suite *)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_parallel_counters; prop_merge_commutative; prop_merge_associative;
      prop_json_roundtrip; prop_delta_merge_inverse; prop_span_nesting;
    ]

let () =
  Alcotest.run "obs"
    [
      ( "control",
        [ Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop ]
      );
      ( "metric",
        [
          Alcotest.test_case "histogram snapshot" `Quick
            test_histogram_snapshot;
          Alcotest.test_case "gauge update_max" `Quick test_gauge_update_max;
          Alcotest.test_case "golden summary rendering" `Quick
            test_golden_summary;
        ] );
      ( "flight",
        [
          Alcotest.test_case "flight-only gating" `Quick
            test_flight_only_gating;
          Alcotest.test_case "concurrent recording is exact" `Quick
            test_flight_concurrent_exact;
          Alcotest.test_case "slow-request retention" `Quick
            test_flight_slow_retention;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "text-format rendering" `Quick
            test_prometheus_render;
        ] );
      ( "trace",
        [
          Alcotest.test_case "golden Chrome trace" `Quick
            test_golden_chrome_trace;
        ] );
      ( "integration",
        [
          Alcotest.test_case "session counters match stats" `Quick
            test_session_counters_match;
        ] );
      ("properties", properties);
    ]
