(* Tests for Util.Parallel: the deterministic chunking contract, the
   persistent domain pool, and pooled-vs-spawned equivalence.

   Everything here runs with [~clamp:false] so true multi-domain
   schedules are exercised even on single-core CI runners — the
   determinism contract promises identical results anyway. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A cheap, index-determined workload: the merged output must equal the
   sequential map whatever the chunking or schedule. *)
let item i = (i * i) - (3 * i)
let per_index ~lo ~hi = List.init (hi - lo) (fun k -> item (lo + k))
let reference n = List.init n item

(* ------------------------------------------------------- chunking *)

let prop_bounds_exact_partition =
  QCheck2.Test.make ~name:"bounds partition [0,n) exactly" ~count:500
    QCheck2.Gen.(pair (int_range 1 64) (int_range 0 2000))
    (fun (chunks, n) ->
      let parts = Util.Parallel.bounds ~chunks ~n in
      let len = Array.length parts in
      let contiguous = ref true in
      for i = 1 to len - 1 do
        if fst parts.(i) <> snd parts.(i - 1) then contiguous := false
      done;
      len = max 1 (min chunks (max 1 n))
      && fst parts.(0) = 0
      && snd parts.(len - 1) = n
      && !contiguous
      && Array.for_all (fun (lo, hi) -> n = 0 || hi > lo) parts
      && Array.for_all
           (fun (lo, hi) -> hi - lo >= n / len && hi - lo <= (n / len) + 1)
           parts)

(* ----------------------------------- pooled vs spawned vs sequential *)

let prop_pooled_matches_chunked =
  QCheck2.Test.make
    ~name:"map_pooled and chunked_map merge to the sequential map"
    ~count:25
    QCheck2.Gen.(
      triple (int_range 0 300) (int_range 1 5) (int_range 1 64))
    (fun (n, domains, chunk_hint) ->
      let want = reference n in
      let via_chunked =
        List.concat
          (Util.Parallel.chunked_map ~clamp:false ~domains ~n
             (fun ~chunk:_ ~lo ~hi -> per_index ~lo ~hi))
      in
      let via_pooled =
        List.concat
          (Util.Parallel.map_pooled ~clamp:false ~chunk_hint ~domains ~n
             (fun ~worker:_ ~chunk:_ ~lo ~hi -> per_index ~lo ~hi))
      in
      via_chunked = want && via_pooled = want)

(* ------------------------------------------------------------ pool *)

let test_pool_reuse () =
  Util.Parallel.Pool.with_pool ~clamp:false ~domains:4 @@ fun pool ->
  check "size honours the unclamped request" 4
    (Util.Parallel.Pool.size pool);
  (* Several rounds of different shapes over one crew: a worker left in
     a stale round (or a result slot not reset) would corrupt the next
     round's merge. *)
  for round = 1 to 5 do
    let n = 37 * round in
    let got =
      List.concat
        (Util.Parallel.Pool.map pool ~chunk_hint:1 ~n
           (fun ~worker:_ ~chunk:_ ~lo ~hi -> per_index ~lo ~hi))
    in
    checkb (Printf.sprintf "round %d merges in order" round) true
      (got = reference n)
  done

let test_pool_back_to_back_stress () =
  (* Many small rounds back-to-back shake out round-protocol races
     (missed wake-ups, stale epochs) far better than one big map. *)
  Util.Parallel.Pool.with_pool ~clamp:false ~domains:4 @@ fun pool ->
  for round = 0 to 99 do
    let n = 1 + (round * 7 mod 23) in
    let got =
      List.concat
        (Util.Parallel.Pool.map pool ~chunk_hint:1 ~n
           (fun ~worker:_ ~chunk:_ ~lo ~hi -> per_index ~lo ~hi))
    in
    if got <> reference n then
      Alcotest.failf "stress round %d: wrong merge for n=%d" round n
  done

let test_pool_small_n () =
  Util.Parallel.Pool.with_pool ~clamp:false ~domains:8 @@ fun pool ->
  (* Fewer items than workers: n singleton chunks, never empty ones. *)
  let got =
    Util.Parallel.Pool.map pool ~chunk_hint:1 ~n:3
      (fun ~worker:_ ~chunk ~lo ~hi -> (chunk, lo, hi))
  in
  check "three singleton chunks" 3 (List.length got);
  List.iteri
    (fun i (chunk, lo, hi) ->
      check "chunk id" i chunk;
      check "lo" i lo;
      check "hi" (i + 1) hi)
    got;
  check "n=0 maps to nothing" 0
    (List.length
       (Util.Parallel.Pool.map pool ~n:0 (fun ~worker:_ ~chunk:_ ~lo:_ ~hi:_ ->
            ())))

let test_chunk_count_contract () =
  Util.Parallel.Pool.with_pool ~clamp:false ~domains:4 @@ fun pool ->
  let size = Util.Parallel.Pool.size pool in
  List.iter
    (fun (chunk_hint, n) ->
      let c = Util.Parallel.Pool.chunk_count pool ~chunk_hint ~n in
      checkb
        (Printf.sprintf "chunk_count hint=%d n=%d in range" chunk_hint n)
        true
        (c >= min 1 n && c <= max 1 n && c <= size * 8);
      check "pure function of its inputs" c
        (Util.Parallel.Pool.chunk_count pool ~chunk_hint ~n))
    [ (1, 0); (1, 1); (1, 7); (1, 1000); (256, 1000); (256, 100000);
      (1024, 2048); (64, 64) ]

exception Boom of int

let test_pool_exception_recovery () =
  Util.Parallel.Pool.with_pool ~clamp:false ~domains:4 @@ fun pool ->
  (match
     Util.Parallel.Pool.map pool ~chunk_hint:1 ~n:16
       (fun ~worker:_ ~chunk ~lo:_ ~hi:_ ->
         if chunk = 5 then raise (Boom chunk) else chunk)
   with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 5 -> ()
  | exception e -> raise e);
  (* The failed round must leave the crew serviceable. *)
  let got =
    List.concat
      (Util.Parallel.Pool.map pool ~chunk_hint:1 ~n:41
         (fun ~worker:_ ~chunk:_ ~lo ~hi -> per_index ~lo ~hi))
  in
  checkb "pool survives a failed round" true (got = reference 41)

let test_pool_shutdown_idempotent () =
  let pool = Util.Parallel.Pool.create ~clamp:false ~domains:3 () in
  let got =
    List.concat
      (Util.Parallel.Pool.map pool ~chunk_hint:1 ~n:10
         (fun ~worker:_ ~chunk:_ ~lo ~hi -> per_index ~lo ~hi))
  in
  checkb "works before shutdown" true (got = reference 10);
  Util.Parallel.Pool.shutdown pool;
  Util.Parallel.Pool.shutdown pool;
  match
    Util.Parallel.Pool.map pool ~n:4 (fun ~worker:_ ~chunk:_ ~lo:_ ~hi:_ -> 0)
  with
  | _ -> Alcotest.fail "map after shutdown must raise"
  | exception Invalid_argument _ -> ()

(* ---------------------------------------------------------- plumbing *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "reuse across rounds" `Quick test_pool_reuse;
          Alcotest.test_case "back-to-back stress" `Quick
            test_pool_back_to_back_stress;
          Alcotest.test_case "fewer items than workers" `Quick
            test_pool_small_n;
          Alcotest.test_case "chunk_count contract" `Quick
            test_chunk_count_contract;
          Alcotest.test_case "exception recovery" `Quick
            test_pool_exception_recovery;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bounds_exact_partition; prop_pooled_matches_chunked ] );
    ]
