(* Tests for the mccm evaluation daemon: endpoint round-trips over a
   real Unix socket, the concurrency bit-exactness property (server
   replies are bit-identical to sequential in-process evaluation, for
   any mix of concurrent and batched requests), deadline and
   backpressure semantics, batching, and graceful drain.

   Every daemon here runs in-process ({!Serve.Daemon.spawn}) on a
   private socket under a fresh temp path, so suites never interfere
   and nothing leaks across test cases. *)

module Json = Util.Json

let corpus_path =
  if Sys.file_exists "corpus/validate.corpus" then "corpus/validate.corpus"
  else "test/corpus/validate.corpus"

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mccm-t%d-%d.sock" (Unix.getpid ()) !sock_counter)

let with_daemon ?(configure = fun c -> c) f =
  let cfg = configure (Serve.Daemon.default ~socket_path:(fresh_sock ())) in
  let h = Serve.Daemon.spawn cfg in
  Fun.protect
    ~finally:(fun () -> Serve.Daemon.shutdown h)
    (fun () -> f cfg (Serve.Daemon.daemon h))

let with_client cfg f =
  let c = Serve.Client.connect_exn cfg.Serve.Daemon.socket_path in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let ok_exn what = function
  | Ok v -> v
  | Error (code, msg) ->
    Alcotest.failf "%s failed: %s: %s" what code msg

let counter d name =
  match List.assoc_opt name (Serve.Daemon.counters d) with
  | Some v -> v
  | None -> Alcotest.failf "unknown daemon counter %S" name

let wait_until ?(timeout_s = 10.0) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      loop ()
    end
  in
  loop ()

let metrics_equal (a : Mccm.Metrics.t) (b : Mccm.Metrics.t) =
  (* Bit-exact: float fields must be equal as IEEE values, not close. *)
  a.Mccm.Metrics.latency_s = b.Mccm.Metrics.latency_s
  && a.Mccm.Metrics.throughput_ips = b.Mccm.Metrics.throughput_ips
  && a.Mccm.Metrics.buffer_bytes = b.Mccm.Metrics.buffer_bytes
  && a.Mccm.Metrics.accesses = b.Mccm.Metrics.accesses
  && a.Mccm.Metrics.feasible = b.Mccm.Metrics.feasible

let check_metrics what expected actual =
  if not (metrics_equal expected actual) then
    Alcotest.failf "%s: metrics differ from in-process evaluation:@.%a@.vs@.%a"
      what Mccm.Metrics.pp expected Mccm.Metrics.pp actual

(* ------------------------------------------------------- round-trips *)

let test_ping () =
  with_daemon (fun cfg _d ->
      with_client cfg (fun c ->
          let r = ok_exn "ping" (Serve.Client.ping ~timeout_s:30.0 c) in
          Alcotest.(check bool)
            "pong" true
            (Json.member "pong" r = Some (Json.Bool true));
          Alcotest.(check bool)
            "version" true
            (Option.bind (Json.member "version" r) Json.string_
            = Some Serve.Protocol.version)))

let round_trip_cases =
  [
    ("MobV2", "VCU108", "hybrid/4");
    ("Res50", "ZC706", "segmented/3");
    ("XCp", "ZCU102", "segmentedrr/5");
    ("Res152", "VCU110", "{L1-L4:CE1, L5-Last:CE2}");
  ]

let test_evaluate_round_trip () =
  with_daemon (fun cfg _d ->
      with_client cfg (fun c ->
          List.iter
            (fun (m, b, a) ->
              let model = Option.get (Cnn.Model_zoo.by_abbreviation m) in
              let board = Option.get (Platform.Board.by_name b) in
              let archi = Result.get_ok (Arch.Shorthand.parse model a) in
              let expected = Mccm.Evaluate.metrics model board archi in
              let got =
                ok_exn "evaluate"
                  (Serve.Client.evaluate ~timeout_s:60.0 c ~model:m ~board:b
                     ~arch:a)
              in
              check_metrics (Printf.sprintf "%s/%s/%s" m b a) expected got)
            round_trip_cases))

let test_explore_round_trip () =
  with_daemon (fun cfg _d ->
      let model = Option.get (Cnn.Model_zoo.by_abbreviation "MobV2") in
      let board = Option.get (Platform.Board.by_name "VCU108") in
      let direct =
        Dse.Explore.run ~seed:7L ~samples:120 model board
      in
      with_client cfg (fun c ->
          let r =
            ok_exn "explore"
              (Serve.Client.call ~timeout_s:120.0 c Serve.Protocol.Explore
                 (Json.Obj
                    [
                      ("model", Json.Str "MobV2");
                      ("board", Json.Str "VCU108");
                      ("samples", Json.Num 120.0);
                      ("seed", Json.Num 7.0);
                    ]))
          in
          Alcotest.(check (option int))
            "sampled" (Some 120)
            (Option.bind (Json.member "sampled" r) Json.int_);
          Alcotest.(check (option int))
            "distinct"
            (Some direct.Dse.Explore.distinct)
            (Option.bind (Json.member "distinct" r) Json.int_);
          Alcotest.(check (option int))
            "feasible"
            (Some (List.length direct.Dse.Explore.evaluated))
            (Option.bind (Json.member "feasible" r) Json.int_);
          let front = Option.get (Option.bind (Json.member "front" r) Json.list_) in
          Alcotest.(check int)
            "front size"
            (List.length direct.Dse.Explore.front)
            (List.length front);
          List.iter2
            (fun (p : Dse.Explore.evaluated Dse.Pareto.point) j ->
              let e = p.Dse.Pareto.item in
              let want_arch =
                Arch.Notation.to_string
                  (Arch.Custom.arch_of_spec model e.Dse.Explore.spec)
              in
              Alcotest.(check (option string))
                "front arch" (Some want_arch)
                (Option.bind (Json.member "arch" j) Json.string_);
              let m =
                Result.get_ok
                  (Serve.Protocol.metrics_of_json
                     (Option.get (Json.member "metrics" j)))
              in
              check_metrics "front metrics" e.Dse.Explore.metrics m)
            direct.Dse.Explore.front front))

let test_enumerate_round_trip () =
  with_daemon (fun cfg _d ->
      let model = Option.get (Cnn.Model_zoo.by_abbreviation "MobV2") in
      let board = Option.get (Platform.Board.by_name "VCU108") in
      let winner, stats =
        Dse.Enumerate.exhaustive_best ~max_specs:2000 ~objective:`Throughput
          ~ces:3 model board
      in
      with_client cfg (fun c ->
          let r =
            ok_exn "enumerate"
              (Serve.Client.call ~timeout_s:120.0 c Serve.Protocol.Enumerate
                 (Json.Obj
                    [
                      ("model", Json.Str "MobV2");
                      ("board", Json.Str "VCU108");
                      ("ces", Json.Num 3.0);
                      ("max_specs", Json.Num 2000.0);
                      ("objective", Json.Str "throughput");
                    ]))
          in
          Alcotest.(check (option int))
            "enumerated"
            (Some stats.Dse.Enumerate.enumerated)
            (Option.bind (Json.member "enumerated" r) Json.int_);
          let e = Option.get winner in
          let j = Option.get (Json.member "winner" r) in
          Alcotest.(check (option string))
            "winner arch"
            (Some
               (Arch.Notation.to_string
                  (Arch.Custom.arch_of_spec model e.Dse.Explore.spec)))
            (Option.bind (Json.member "arch" j) Json.string_);
          let m =
            Result.get_ok
              (Serve.Protocol.metrics_of_json
                 (Option.get (Json.member "metrics" j)))
          in
          check_metrics "winner metrics" e.Dse.Explore.metrics m))

let test_validate_round_trip () =
  with_daemon (fun cfg _d ->
      with_client cfg (fun c ->
          let r =
            ok_exn "validate"
              (Serve.Client.call ~timeout_s:300.0 c Serve.Protocol.Validate
                 (Json.Obj
                    [ ("samples", Json.Num 12.0); ("seed", Json.Num 3.0) ]))
          in
          Alcotest.(check (option bool))
            "ok" (Some true)
            (Option.bind (Json.member "ok" r) Json.bool_);
          Alcotest.(check (option int))
            "generated" (Some 12)
            (Option.bind (Json.member "generated_cases" r) Json.int_)))

(* --------------------------------------- concurrency bit-exactness *)

(* The acceptance property: whatever the interleaving — concurrent
   clients, pipelined frames, worker batching — every reply is
   bit-identical to sequential single-process evaluation of the same
   case.  Cases mix the committed corpus (synthetic models, raw
   boards; exact round-trip serialisation) with fresh generated ones. *)
let test_concurrent_bit_exact () =
  let corpus =
    match Validate.Corpus.load corpus_path with
    | Ok cases -> cases
    | Error msg -> Alcotest.failf "corpus: %s" msg
  in
  let generated =
    List.init 10 (fun i ->
        let rng = Util.Prng.create ~seed:(Int64.of_int (1000 + i)) in
        Validate.Gen.case rng ~index:i)
  in
  let cases = corpus @ generated in
  let expected =
    List.map
      (fun (case : Validate.Case.t) ->
        Mccm.Evaluate.metrics case.Validate.Case.model
          case.Validate.Case.board
          (Validate.Case.materialize case))
      cases
  in
  with_daemon
    ~configure:(fun c -> { c with Serve.Daemon.workers = 2; batch_limit = 4 })
    (fun cfg _d ->
      let n_threads = 4 in
      let failures = Atomic.make 0 in
      let errors = Atomic.make 0 in
      let rotate k l =
        let n = List.length l in
        List.init n (fun i -> List.nth l ((i + k) mod n))
      in
      let worker k =
        with_client cfg (fun c ->
            List.iter2
              (fun (case : Validate.Case.t) want ->
                match Serve.Client.evaluate_case ~timeout_s:120.0 c case with
                | Ok got ->
                  if not (metrics_equal want got) then Atomic.incr failures
                | Error _ -> Atomic.incr errors)
              (rotate k cases) (rotate k expected))
      in
      let threads = List.init n_threads (fun k -> Thread.create worker k) in
      List.iter Thread.join threads;
      Alcotest.(check int) "transport errors" 0 (Atomic.get errors);
      Alcotest.(check int) "bit-exactness failures" 0 (Atomic.get failures))

(* ------------------------------------------- deadline / backpressure *)

let test_deadline_expired_at_gate () =
  with_daemon (fun cfg d ->
      with_client cfg (fun c ->
          let before_enq = counter d "enqueued" in
          let before_disp = counter d "dispatched" in
          (match
             Serve.Client.evaluate ~timeout_s:30.0 ~deadline_ms:(-5.0) c
               ~model:"MobV2" ~board:"VCU108" ~arch:"hybrid/4"
           with
          | Error ("deadline_exceeded", _) -> ()
          | Ok _ -> Alcotest.fail "expired deadline was evaluated"
          | Error (code, msg) ->
            Alcotest.failf "wrong error: %s: %s" code msg);
          (* The queue and the pool never saw the request. *)
          Alcotest.(check int) "enqueued" before_enq (counter d "enqueued");
          Alcotest.(check int) "dispatched" before_disp
            (counter d "dispatched");
          Alcotest.(check bool)
            "rejected_deadline incremented" true
            (counter d "rejected_deadline" > 0)))

(* Fire the blocking sleep without waiting for its reply, so the test
   thread is free to queue the doomed request behind it. *)
let test_deadline_expired_at_dispatch () =
  with_daemon
    ~configure:(fun c -> { c with Serve.Daemon.workers = 1 })
    (fun cfg d ->
      with_client cfg (fun blocker ->
          with_client cfg (fun c ->
              Result.get_ok
                (Serve.Client.send_line blocker
                   "{\"id\":\"hold\",\"op\":\"sleep\",\"params\":{\"seconds\":0.5}}");
              Alcotest.(check bool)
                "worker occupied" true
                (wait_until (fun () -> counter d "dispatched" >= 1));
              (match
                 Serve.Client.evaluate ~timeout_s:30.0 ~deadline_ms:50.0 c
                   ~model:"MobV2" ~board:"VCU108" ~arch:"hybrid/4"
               with
              | Error ("deadline_exceeded", _) -> ()
              | Ok _ -> Alcotest.fail "late request was evaluated"
              | Error (code, msg) ->
                Alcotest.failf "wrong error: %s: %s" code msg);
              ignore (Serve.Client.recv_line ~timeout_s:30.0 blocker))))

let test_backpressure_overloaded () =
  with_daemon
    ~configure:(fun c ->
      { c with Serve.Daemon.workers = 1; queue_capacity = 2 })
    (fun cfg d ->
      with_client cfg (fun filler ->
          with_client cfg (fun c ->
              (* One request occupies the worker ... *)
              Result.get_ok
                (Serve.Client.send_line filler
                   "{\"id\":0,\"op\":\"sleep\",\"params\":{\"seconds\":0.6}}");
              Alcotest.(check bool)
                "worker occupied" true
                (wait_until (fun () -> counter d "dispatched" >= 1));
              (* ... two more fill the queue to capacity ... *)
              Result.get_ok
                (Serve.Client.send_line filler
                   "{\"id\":1,\"op\":\"sleep\",\"params\":{\"seconds\":0.05}}");
              Result.get_ok
                (Serve.Client.send_line filler
                   "{\"id\":2,\"op\":\"sleep\",\"params\":{\"seconds\":0.05}}");
              Alcotest.(check bool)
                "queue full" true
                (wait_until (fun () -> Serve.Daemon.queue_depth d >= 2));
              let before = counter d "rejected_overloaded" in
              (* ... and the next is refused immediately. *)
              (match
                 Serve.Client.evaluate ~timeout_s:30.0 c ~model:"MobV2"
                   ~board:"VCU108" ~arch:"hybrid/4"
               with
              | Error ("overloaded", _) -> ()
              | Ok _ -> Alcotest.fail "overloaded daemon accepted work"
              | Error (code, msg) ->
                Alcotest.failf "wrong error: %s: %s" code msg);
              Alcotest.(check int)
                "rejected counter" (before + 1)
                (counter d "rejected_overloaded");
              (* The queued work itself still completes. *)
              List.iter
                (fun _ ->
                  match Serve.Client.recv_line ~timeout_s:30.0 filler with
                  | Ok _ -> ()
                  | Error msg -> Alcotest.failf "filler reply: %s" msg)
                [ (); (); () ])))

(* ---------------------------------------------------------- batching *)

let test_batching () =
  with_daemon
    ~configure:(fun c ->
      { c with Serve.Daemon.workers = 1; batch_limit = 8 })
    (fun cfg d ->
      let model = Option.get (Cnn.Model_zoo.by_abbreviation "MobV2") in
      let board = Option.get (Platform.Board.by_name "VCU108") in
      let archs = [ "hybrid/2"; "hybrid/3"; "hybrid/4"; "segmented/2"; "segmented/3" ] in
      let expected =
        List.map
          (fun a ->
            Mccm.Evaluate.metrics model board
              (Result.get_ok (Arch.Shorthand.parse model a)))
          archs
      in
      with_client cfg (fun blocker ->
          with_client cfg (fun c ->
              Result.get_ok
                (Serve.Client.send_line blocker
                   "{\"id\":0,\"op\":\"sleep\",\"params\":{\"seconds\":0.5}}");
              Alcotest.(check bool)
                "worker occupied" true
                (wait_until (fun () -> counter d "dispatched" >= 1));
              (* Pipeline the evaluates while the worker sleeps: they
                 queue back-to-back and are served as one batch. *)
              List.iteri
                (fun i a ->
                  Result.get_ok
                    (Serve.Client.send_line c
                       (Json.to_string
                          (Json.Obj
                             [
                               ("id", Json.Num (float_of_int i));
                               ("op", Json.Str "evaluate");
                               ( "params",
                                 Json.Obj
                                   [
                                     ("model", Json.Str "MobV2");
                                     ("board", Json.Str "VCU108");
                                     ("arch", Json.Str a);
                                   ] );
                             ]))))
                archs;
              Alcotest.(check bool)
                "queue filled" true
                (wait_until (fun () ->
                     Serve.Daemon.queue_depth d >= List.length archs));
              (* Collect one reply per request, match by id. *)
              let got = Hashtbl.create 8 in
              List.iter
                (fun _ ->
                  match Serve.Client.recv_line ~timeout_s:60.0 c with
                  | Error msg -> Alcotest.failf "reply: %s" msg
                  | Ok line -> (
                    match Serve.Protocol.parse_reply line with
                    | Error msg -> Alcotest.failf "reply parse: %s" msg
                    | Ok { Serve.Protocol.reply_id; outcome } -> (
                      match (Json.int_ reply_id, outcome) with
                      | Some i, Ok r -> Hashtbl.replace got i r
                      | _, Error (code, msg) ->
                        Alcotest.failf "evaluate error: %s: %s" code msg
                      | None, _ -> Alcotest.fail "reply without integer id")))
                archs;
              List.iteri
                (fun i want ->
                  let r = Hashtbl.find got i in
                  let m =
                    Result.get_ok
                      (Serve.Protocol.metrics_of_json
                         (Option.get (Json.member "metrics" r)))
                  in
                  check_metrics (List.nth archs i) want m)
                expected;
              Alcotest.(check bool)
                "served as a batch" true
                (counter d "batches" >= 1 && counter d "batched" >= 2);
              ignore (Serve.Client.recv_line ~timeout_s:30.0 blocker))))

(* ------------------------------------------------------------- drain *)

let test_shutdown_drains () =
  with_daemon
    ~configure:(fun c -> { c with Serve.Daemon.workers = 1 })
    (fun cfg d ->
      with_client cfg (fun c ->
          (* Queue work, then ask for shutdown; everything already
             queued must still be answered. *)
          List.iteri
            (fun i a ->
              Result.get_ok
                (Serve.Client.send_line c
                   (Printf.sprintf
                      "{\"id\":%d,\"op\":\"evaluate\",\"params\":{\"model\":\"MobV2\",\"board\":\"VCU108\",\"arch\":\"%s\"}}"
                      i a)))
            [ "hybrid/2"; "hybrid/3"; "hybrid/4" ];
          Result.get_ok
            (Serve.Client.send_line c "{\"id\":99,\"op\":\"shutdown\"}");
          let oks = ref 0 and draining = ref false in
          List.iter
            (fun _ ->
              match Serve.Client.recv_line ~timeout_s:60.0 c with
              | Error msg -> Alcotest.failf "drain reply: %s" msg
              | Ok line -> (
                match Serve.Protocol.parse_reply line with
                | Ok { Serve.Protocol.outcome = Ok r; _ } ->
                  if Json.member "draining" r <> None then draining := true
                  else incr oks
                | Ok { Serve.Protocol.outcome = Error (code, msg); _ } ->
                  Alcotest.failf "drain error reply: %s: %s" code msg
                | Error msg -> Alcotest.failf "drain parse: %s" msg))
            [ (); (); (); () ];
          Alcotest.(check int) "evaluations answered" 3 !oks;
          Alcotest.(check bool) "shutdown acknowledged" true !draining;
          Alcotest.(check bool)
            "daemon stopping" true
            (wait_until (fun () -> Serve.Daemon.stopping d))))

(* --------------------------------------------------------- telemetry *)

(* Control ops are answered inline by the reader thread, out-of-band of
   the worker pool; they must keep answering while every worker is
   wedged on queued work. *)
let test_stats_under_saturation () =
  with_daemon
    ~configure:(fun c -> { c with Serve.Daemon.workers = 2 })
    (fun cfg d ->
      with_client cfg (fun blocker ->
          Result.get_ok
            (Serve.Client.send_line blocker
               "{\"id\":0,\"op\":\"sleep\",\"params\":{\"seconds\":1.5}}");
          Result.get_ok
            (Serve.Client.send_line blocker
               "{\"id\":1,\"op\":\"sleep\",\"params\":{\"seconds\":1.5}}");
          Alcotest.(check bool)
            "both workers wedged" true
            (wait_until (fun () -> counter d "dispatched" >= 2));
          with_client cfg (fun c ->
              (* each wedged sleep holds its worker for 1.5 s; if any of
                 these were queued behind them, the 1 s timeouts would
                 fire and the elapsed check would fail *)
              let t0 = Unix.gettimeofday () in
              let stats =
                ok_exn "stats" (Serve.Client.stats ~timeout_s:1.0 c)
              in
              let health =
                ok_exn "health" (Serve.Client.health ~timeout_s:1.0 c)
              in
              let recent =
                ok_exn "recent" (Serve.Client.recent ~timeout_s:1.0 ~n:10 c)
              in
              let elapsed = Unix.gettimeofday () -. t0 in
              Alcotest.(check bool)
                "answered while saturated" true (elapsed < 1.0);
              Alcotest.(check bool)
                "stats carries the metrics snapshot" true
                (Json.member "metrics" stats <> None);
              Alcotest.(check bool)
                "health is ok (not draining)" true
                (Option.bind (Json.member "status" health) Json.string_
                = Some "ok");
              Alcotest.(check bool)
                "recent answers" true
                (Json.member "records" recent <> None));
          (* unwedge before the implicit shutdown so the drain is quick *)
          ignore (Serve.Client.recv_line ~timeout_s:30.0 blocker);
          ignore (Serve.Client.recv_line ~timeout_s:30.0 blocker)))

(* Spans observe their latency histograms after the reply frame is
   written, so "no in-flight work" is not quite "quiescent": wait for
   two identical snapshots 50 ms apart. *)
let snapshots_stable () =
  wait_until (fun () ->
      let a = Mccm_obs.Metric.snapshot () in
      Thread.delay 0.05;
      a = Mccm_obs.Metric.snapshot ())

let test_stats_snapshot_bit_exact () =
  Mccm_obs.disable ();
  Mccm_obs.reset ();
  Mccm_obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Mccm_obs.disable ();
      Mccm_obs.reset ())
    (fun () ->
      with_daemon (fun cfg _d ->
          with_client cfg (fun c ->
              List.iter
                (fun (m, b, a) ->
                  ignore
                    (ok_exn "evaluate"
                       (Serve.Client.evaluate ~timeout_s:60.0 c ~model:m
                          ~board:b ~arch:a)))
                [
                  ("MobV2", "VCU108", "hybrid/2");
                  ("MobV2", "VCU108", "hybrid/3");
                  ("Res50", "ZC706", "segmented/2");
                ];
              Alcotest.(check bool)
                "metrics quiesced" true (snapshots_stable ());
              (* The stats op itself must not perturb the snapshot it
                 reports (control ops are obs-neutral), so the decoded
                 wire snapshot has to equal a snapshot taken after the
                 reply — structurally, i.e. bit for bit. *)
              let reply =
                ok_exn "stats" (Serve.Client.stats ~timeout_s:30.0 c)
              in
              let decoded =
                match
                  Option.map Mccm_obs.Metric.of_json
                    (Json.member "metrics" reply)
                with
                | Some (Ok s) -> s
                | Some (Error msg) -> Alcotest.failf "metrics decode: %s" msg
                | None -> Alcotest.fail "stats reply without metrics member"
              in
              let local = Mccm_obs.Metric.snapshot () in
              Alcotest.(check bool)
                "decoded wire snapshot = in-process snapshot" true
                (decoded = local);
              List.iter
                (fun (name, h) ->
                  if h.Mccm_obs.Metric.count > 0 then
                    let h' =
                      List.assoc name decoded.Mccm_obs.Metric.histograms
                    in
                    List.iter
                      (fun q ->
                        Alcotest.(check bool)
                          (Printf.sprintf "%s quantile %.2f" name q)
                          true
                          (Mccm_obs.Metric.quantile h ~q
                          = Mccm_obs.Metric.quantile h' ~q))
                      [ 0.5; 0.95; 0.99 ])
                local.Mccm_obs.Metric.histograms)))

(* rid propagation and the recent op's view of completed work. *)
let test_recent_and_rids () =
  with_daemon (fun cfg _d ->
      with_client cfg (fun c ->
          ignore
            (ok_exn "evaluate"
               (Serve.Client.evaluate ~timeout_s:60.0 c ~model:"MobV2"
                  ~board:"VCU108" ~arch:"hybrid/2"));
          (* an id-less error reply must mint and expose a rid *)
          Result.get_ok (Serve.Client.send_line c "{\"op\":\"nonsense\"}");
          (match Serve.Client.recv_line ~timeout_s:30.0 c with
          | Error msg -> Alcotest.failf "recv: %s" msg
          | Ok line -> (
            match Json.parse line with
            | Error msg -> Alcotest.failf "reply parse: %s" msg
            | Ok frame ->
              Alcotest.(check bool)
                "error reply carries a minted rid" true
                (match Json.member "rid" frame with
                | Some (Json.Str r) -> String.length r > 0
                | _ -> false)));
          let recent =
            ok_exn "recent" (Serve.Client.recent ~timeout_s:30.0 c)
          in
          Alcotest.(check bool)
            "flight recorder armed by the daemon" true
            (Json.member "enabled" recent = Some (Json.Bool true));
          match Json.member "records" recent with
          | Some (Json.Arr records) ->
            Alcotest.(check bool)
              "the evaluate left a flight record" true
              (List.exists
                 (fun r ->
                   Option.bind (Json.member "op" r) Json.string_
                   = Some "evaluate"
                   && Option.bind (Json.member "outcome" r) Json.string_
                      = Some "ok"
                   && Json.member "rid" r <> None)
                 records)
          | _ -> Alcotest.fail "recent reply without records"))

(* ------------------------------------------------------ result cache *)

let eval_frame ~id ?(cache = true) ~model ~board ~arch () =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Num (float_of_int id));
         ("op", Json.Str "evaluate");
         ( "params",
           Json.Obj
             ([
                ("model", Json.Str model);
                ("board", Json.Str board);
                ("arch", Json.Str arch);
              ]
             @ if cache then [] else [ ("cache", Json.Bool false) ]) );
       ])

let raw_call c frame =
  Result.get_ok (Serve.Client.send_line c frame);
  match Serve.Client.recv_line ~timeout_s:60.0 c with
  | Ok line -> line
  | Error msg -> Alcotest.failf "recv: %s" msg

(* The cache's core contract, pinned at the frame level: the reply
   served from the cache is byte-identical to the reply that came from
   the evaluation which populated it — and to an uncached evaluation
   of the same request. *)
let test_cache_bit_identical () =
  with_daemon (fun cfg d ->
      with_client cfg (fun c ->
          let frame = eval_frame ~id:7 ~model:"Res50" ~board:"ZC706"
              ~arch:"segmented/3" () in
          let cold = raw_call c frame in
          Alcotest.(check int) "one miss" 1 (counter d "cache_misses");
          let warm = raw_call c frame in
          Alcotest.(check int) "one hit" 1 (counter d "cache_hits");
          Alcotest.(check string) "hit byte-identical to miss" cold warm;
          let opted_out =
            raw_call c
              (eval_frame ~id:7 ~cache:false ~model:"Res50" ~board:"ZC706"
                 ~arch:"segmented/3" ())
          in
          Alcotest.(check string) "opt-out byte-identical too" cold opted_out;
          (* stats exposes the cache occupancy *)
          let stats = ok_exn "stats" (Serve.Client.stats ~timeout_s:30.0 c) in
          match Json.member "cache" stats with
          | Some cache ->
            Alcotest.(check bool)
              "stats cache entries > 0" true
              (match Json.member "entries" cache with
              | Some (Json.Num n) -> n >= 1.0
              | _ -> false)
          | None -> Alcotest.fail "stats reply without cache member"))

(* Mixed cache-on/off clients replaying the corpus concurrently: every
   reply, hit or not, decodes to exactly the in-process metrics. *)
let test_cache_mixed_clients () =
  let corpus =
    match Validate.Corpus.load corpus_path with
    | Ok cases -> cases
    | Error msg -> Alcotest.failf "corpus: %s" msg
  in
  let expected =
    List.map
      (fun (case : Validate.Case.t) ->
        Mccm.Evaluate.metrics case.Validate.Case.model case.Validate.Case.board
          (Validate.Case.materialize case))
      corpus
  in
  with_daemon
    ~configure:(fun c -> { c with Serve.Daemon.workers = 2 })
    (fun cfg d ->
      let failures = Atomic.make 0 in
      let errors = Atomic.make 0 in
      let worker use_cache () =
        with_client cfg (fun c ->
            for _ = 1 to 3 do
              List.iter2
                (fun case want ->
                  match
                    Serve.Client.evaluate_case ~timeout_s:120.0
                      ~cache:use_cache c case
                  with
                  | Ok got ->
                    if not (metrics_equal want got) then Atomic.incr failures
                  | Error _ -> Atomic.incr errors)
                corpus expected
            done)
      in
      let threads =
        List.map (fun b -> Thread.create (worker b) ()) [ true; false; true ]
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "transport errors" 0 (Atomic.get errors);
      Alcotest.(check int) "bit-exactness failures" 0 (Atomic.get failures);
      Alcotest.(check bool) "cache hits happened" true
        (counter d "cache_hits" > 0))

(* Single-flight: wedge the only worker, pile identical requests onto
   the queued leader, and read exactly one evaluation off the daemon's
   own counters. *)
let test_cache_coalescing () =
  with_daemon
    ~configure:(fun c -> { c with Serve.Daemon.workers = 1 })
    (fun cfg d ->
      with_client cfg (fun blocker ->
          with_client cfg (fun c ->
              Result.get_ok
                (Serve.Client.send_line blocker
                   "{\"id\":\"hold\",\"op\":\"sleep\",\"params\":{\"seconds\":0.4}}");
              Alcotest.(check bool)
                "worker occupied" true
                (wait_until (fun () -> counter d "dispatched" >= 1));
              let enqueued0 = counter d "enqueued" in
              let herd = 8 in
              let frames =
                List.init herd (fun i ->
                    eval_frame ~id:i ~model:"MobV2" ~board:"VCU108"
                      ~arch:"hybrid/4" ())
              in
              List.iter
                (fun f -> Result.get_ok (Serve.Client.send_line c f))
                frames;
              let replies =
                List.map
                  (fun _ ->
                    match Serve.Client.recv_line ~timeout_s:60.0 c with
                    | Ok line -> line
                    | Error msg -> Alcotest.failf "herd recv: %s" msg)
                  frames
              in
              ignore (Serve.Client.recv_line ~timeout_s:30.0 blocker);
              Alcotest.(check int) "one evaluation (misses)" 1
                (counter d "cache_misses");
              Alcotest.(check int) "rest coalesced" (herd - 1)
                (counter d "cache_coalesced");
              Alcotest.(check int) "one enqueue" (enqueued0 + 1)
                (counter d "enqueued");
              (* Ids differ per frame; results must not. *)
              let results =
                List.map
                  (fun line ->
                    match
                      Option.map Json.to_string
                        (Json.member "result"
                           (Result.get_ok (Json.parse line)))
                    with
                    | Some r -> r
                    | None -> Alcotest.failf "herd reply without result: %s" line)
                  replies
              in
              match results with
              | [] -> Alcotest.fail "no herd replies"
              | first :: rest ->
                Alcotest.(check bool)
                  "coalesced results identical" true
                  (List.for_all (String.equal first) rest))))

(* A tiny cache must evict, stay bounded, and keep replies correct. *)
let test_cache_eviction_bounded () =
  with_daemon
    ~configure:(fun c -> { c with Serve.Daemon.cache_capacity = 2 })
    (fun cfg d ->
      with_client cfg (fun c ->
          let archs = [ "hybrid/2"; "hybrid/3"; "hybrid/4"; "segmented/2" ] in
          for _ = 1 to 3 do
            List.iter
              (fun arch ->
                ignore
                  (ok_exn "evaluate"
                     (Serve.Client.evaluate ~timeout_s:60.0 c ~model:"MobV2"
                        ~board:"VCU108" ~arch)))
              archs
          done;
          Alcotest.(check bool) "evictions happened" true
            (counter d "cache_evictions" > 0);
          let stats = ok_exn "stats" (Serve.Client.stats ~timeout_s:30.0 c) in
          match Json.member "cache" stats with
          | Some cache ->
            Alcotest.(check bool)
              "entries bounded by capacity" true
              (match Json.member "entries" cache with
              | Some (Json.Num n) -> n <= 2.0
              | _ -> false)
          | None -> Alcotest.fail "stats reply without cache member"))

(* cache_capacity = 0 disables the cache entirely; everything still
   works and no cache counter ever moves. *)
let test_cache_disabled () =
  with_daemon
    ~configure:(fun c -> { c with Serve.Daemon.cache_capacity = 0 })
    (fun cfg d ->
      with_client cfg (fun c ->
          for _ = 1 to 3 do
            ignore
              (ok_exn "evaluate"
                 (Serve.Client.evaluate ~timeout_s:60.0 c ~model:"MobV2"
                    ~board:"VCU108" ~arch:"hybrid/4"))
          done;
          Alcotest.(check int) "no hits" 0 (counter d "cache_hits");
          Alcotest.(check int) "no misses" 0 (counter d "cache_misses");
          Alcotest.(check int) "no coalescing" 0
            (counter d "cache_coalesced")))

(* A non-boolean "cache" member is a validation error, not a crash. *)
let test_cache_param_validated () =
  with_daemon (fun cfg _d ->
      with_client cfg (fun c ->
          Result.get_ok
            (Serve.Client.send_line c
               "{\"id\":1,\"op\":\"evaluate\",\"params\":{\"model\":\"MobV2\",\"board\":\"VCU108\",\"arch\":\"hybrid/4\",\"cache\":\"yes\"}}");
          match Serve.Client.recv_line ~timeout_s:30.0 c with
          | Error msg -> Alcotest.failf "recv: %s" msg
          | Ok line ->
            let frame = Result.get_ok (Json.parse line) in
            Alcotest.(check bool)
              "bad_params" true
              (Option.bind (Json.member "error" frame) (Json.member "code")
              = Some (Json.Str "bad_params"))))

(* ---------------------------------------------------------- run all *)

let () =
  Alcotest.run "serve"
    [
      ( "round-trip",
        [
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "evaluate (4 cases)" `Quick
            test_evaluate_round_trip;
          Alcotest.test_case "explore" `Quick test_explore_round_trip;
          Alcotest.test_case "enumerate" `Quick test_enumerate_round_trip;
          Alcotest.test_case "validate" `Slow test_validate_round_trip;
        ] );
      ( "bit-exactness",
        [
          Alcotest.test_case "concurrent corpus + generated replay" `Slow
            test_concurrent_bit_exact;
        ] );
      ( "deadline-backpressure",
        [
          Alcotest.test_case "expired at gate: immediate, pool untouched"
            `Quick test_deadline_expired_at_gate;
          Alcotest.test_case "expired in queue: rejected at dispatch" `Quick
            test_deadline_expired_at_dispatch;
          Alcotest.test_case "full queue: overloaded + counter" `Quick
            test_backpressure_overloaded;
        ] );
      ( "batching",
        [ Alcotest.test_case "consecutive evaluates batched" `Quick
            test_batching ] );
      ( "telemetry",
        [
          Alcotest.test_case "stats/health/recent under saturation" `Quick
            test_stats_under_saturation;
          Alcotest.test_case "stats snapshot is bit-exact over the wire"
            `Quick test_stats_snapshot_bit_exact;
          Alcotest.test_case "recent records and rid propagation" `Quick
            test_recent_and_rids;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit byte-identical to miss and opt-out" `Quick
            test_cache_bit_identical;
          Alcotest.test_case "mixed cache-on/off clients bit-exact" `Slow
            test_cache_mixed_clients;
          Alcotest.test_case "thundering herd coalesces to one evaluation"
            `Quick test_cache_coalescing;
          Alcotest.test_case "tiny cache evicts and stays bounded" `Quick
            test_cache_eviction_bounded;
          Alcotest.test_case "capacity 0 disables" `Quick test_cache_disabled;
          Alcotest.test_case "non-boolean cache param rejected" `Quick
            test_cache_param_validated;
        ] );
      ( "drain",
        [ Alcotest.test_case "shutdown drains queued work" `Quick
            test_shutdown_drains ] );
    ]
