(* Protocol fuzzing for the mccm daemon: malformed JSON, wrong-shape
   frames, truncated writes, oversized frames and interleaved partial
   frames.  The contract under fuzz is narrow and absolute — every
   complete frame gets exactly one structured reply (ok or a protocol
   error), the daemon never crashes, never wedges its worker pool, and
   a well-formed request on the same battered connection still gets a
   correct answer afterwards.

   One daemon instance (small frame cap to make the oversized path
   cheap to hit) is shared by all properties; surviving the whole run
   is itself part of the property. *)

module Json = Util.Json

let sock =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mccm-fuzz-%d.sock" (Unix.getpid ()))

let max_frame = 4096

let handle =
  lazy
    (Serve.Daemon.spawn
       {
         (Serve.Daemon.default ~socket_path:sock) with
         Serve.Daemon.workers = 1;
         max_frame_bytes = max_frame;
       })

let daemon () = Serve.Daemon.daemon (Lazy.force handle)

let with_client f =
  let c =
    Serve.Client.connect_exn
      (Serve.Daemon.config (daemon ())).Serve.Daemon.socket_path
  in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let known_error_codes =
  [
    "parse_error";
    "invalid_request";
    "unknown_op";
    "bad_params";
    "overloaded";
    "deadline_exceeded";
    "oversized_frame";
    "shutting_down";
    "internal";
  ]

(* Expect exactly one reply for one just-sent frame: it must parse, and
   if it is an error its code must be from the documented set. *)
let expect_structured_reply c what =
  match Serve.Client.recv_line ~timeout_s:30.0 c with
  | Error msg -> QCheck2.Test.fail_reportf "%s: no reply: %s" what msg
  | Ok line -> (
    match Serve.Protocol.parse_reply line with
    | Error msg ->
      QCheck2.Test.fail_reportf "%s: unparsable reply %S: %s" what line msg
    | Ok { Serve.Protocol.outcome = Ok _; _ } -> ()
    | Ok { Serve.Protocol.outcome = Error (code, _); _ } ->
      if not (List.mem code known_error_codes) then
        QCheck2.Test.fail_reportf "%s: unknown error code %S" what code)

(* After any abuse, the same connection must still serve a valid ping. *)
let still_alive c =
  match Serve.Client.ping ~timeout_s:30.0 c with
  | Ok r -> Json.member "pong" r = Some (Json.Bool true)
  | Error (code, msg) ->
    QCheck2.Test.fail_reportf "ping after abuse failed: %s: %s" code msg

(* ------------------------------------------------------- generators *)

(* Printable-ish garbage without LF (so one write = one frame), never
   empty — the daemon deliberately skips blank lines without replying. *)
let gen_garbage_line =
  QCheck2.Gen.(
    string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 1 200))

(* Structurally valid JSON, wrong shape for a request. *)
let gen_wrong_shape =
  QCheck2.Gen.oneofl
    [
      "null";
      "42";
      "\"just a string\"";
      "[1,2,3]";
      "{}";
      "{\"op\":42}";
      "{\"id\":1,\"op\":\"no-such-op\"}";
      "{\"id\":1,\"op\":\"evaluate\"}";
      "{\"id\":1,\"op\":\"evaluate\",\"params\":{\"model\":\"NoSuchNet\",\"board\":\"VCU108\",\"arch\":\"hybrid/4\"}}";
      "{\"id\":1,\"op\":\"evaluate\",\"params\":{\"model\":\"MobV2\",\"board\":\"NoSuchBoard\",\"arch\":\"hybrid/4\"}}";
      "{\"id\":1,\"op\":\"evaluate\",\"params\":{\"model\":\"MobV2\",\"board\":\"VCU108\",\"arch\":\"garbage!!\"}}";
      "{\"id\":1,\"op\":\"sleep\",\"params\":{\"seconds\":1e9}}";
      "{\"id\":1,\"op\":\"explore\",\"params\":{\"model\":\"MobV2\",\"board\":\"VCU108\",\"samples\":-3}}";
      "{\"id\":{\"nested\":[true]},\"op\":\"ping\"}";
      "{\"id\":1,\"op\":\"ping\",\"deadline_ms\":\"soon\"}";
    ]

let valid_ping = {|{"id":7,"op":"ping"}|}

(* --------------------------------------------------------- properties *)

let prop_garbage_gets_one_error =
  QCheck2.Test.make ~name:"malformed frame -> one structured reply" ~count:60
    QCheck2.Gen.(list_size (int_range 1 8) gen_garbage_line)
    (fun lines ->
      with_client (fun c ->
          List.iter
            (fun line ->
              (match Serve.Client.send_line c line with
              | Ok () -> ()
              | Error msg -> QCheck2.Test.fail_reportf "send: %s" msg);
              expect_structured_reply c "garbage")
            lines;
          still_alive c))

let prop_wrong_shape_gets_error =
  QCheck2.Test.make ~name:"wrong-shape frame -> structured error" ~count:60
    QCheck2.Gen.(list_size (int_range 1 6) gen_wrong_shape)
    (fun frames ->
      with_client (fun c ->
          List.iter
            (fun frame ->
              (match Serve.Client.send_line c frame with
              | Ok () -> ()
              | Error msg -> QCheck2.Test.fail_reportf "send: %s" msg);
              expect_structured_reply c frame)
            frames;
          still_alive c))

let prop_truncated_then_closed =
  QCheck2.Test.make ~name:"truncated frame + close -> daemon survives"
    ~count:40 gen_garbage_line (fun partial ->
      (* Write a frame with no newline and hang up; the daemon must
         drop the connection without leaking or wedging. *)
      with_client (fun c ->
          match Serve.Client.send_bytes c partial with
          | Ok () -> ()
          | Error msg -> QCheck2.Test.fail_reportf "send: %s" msg);
      with_client still_alive)

let prop_oversized_then_resync =
  QCheck2.Test.make ~name:"oversized frame -> error, connection resyncs"
    ~count:20
    QCheck2.Gen.(int_range (max_frame + 1) (4 * max_frame))
    (fun n ->
      with_client (fun c ->
          (match Serve.Client.send_line c (String.make n 'x') with
          | Ok () -> ()
          | Error msg -> QCheck2.Test.fail_reportf "send: %s" msg);
          (match Serve.Client.recv_line ~timeout_s:30.0 c with
          | Error msg -> QCheck2.Test.fail_reportf "no reply: %s" msg
          | Ok line -> (
            match Serve.Protocol.parse_reply line with
            | Ok { Serve.Protocol.outcome = Error ("oversized_frame", _); _ }
              ->
              ()
            | Ok _ -> QCheck2.Test.fail_reportf "expected oversized_frame"
            | Error msg ->
              QCheck2.Test.fail_reportf "unparsable reply: %s" msg));
          (* The discard-to-newline resync must leave the stream framed:
             the next request parses normally. *)
          still_alive c))

let prop_interleaved_partial_writes =
  QCheck2.Test.make ~name:"interleaved partial frames across connections"
    ~count:30
    QCheck2.Gen.(int_range 1 10)
    (fun cuts ->
      (* Split one valid ping frame into [cuts] chunks on connection A,
         interleaving a full valid frame on connection B between every
         chunk.  Both connections must answer correctly: per-connection
         buffering may never bleed across sockets. *)
      let frame = valid_ping ^ "\n" in
      let a =
        Serve.Client.connect_exn
          (Serve.Daemon.config (daemon ())).Serve.Daemon.socket_path
      in
      let b =
        Serve.Client.connect_exn
          (Serve.Daemon.config (daemon ())).Serve.Daemon.socket_path
      in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          let len = String.length frame in
          let bounds =
            List.init cuts (fun i -> (i * len / cuts, (i + 1) * len / cuts))
          in
          List.iter
            (fun (lo, hi) ->
              if hi > lo then begin
                (match
                   Serve.Client.send_bytes a (String.sub frame lo (hi - lo))
                 with
                | Ok () -> ()
                | Error msg -> QCheck2.Test.fail_reportf "send a: %s" msg);
                match Serve.Client.ping ~timeout_s:30.0 b with
                | Ok _ -> ()
                | Error (code, msg) ->
                  QCheck2.Test.fail_reportf "b wedged: %s: %s" code msg
              end)
            bounds;
          expect_structured_reply a "interleaved ping";
          true))

(* ---------------------------------------- forward compatibility: /2 *)

(* Unknown top-level request fields are ignored, not rejected: newer
   clients may decorate frames (tracing ids, feature hints) and the
   daemon must keep answering.  The recognised fields are exactly
   [id]/[op]/[params]/[deadline_ms]; anything else is opaque. *)

let reserved_fields = [ "id"; "op"; "params"; "deadline_ms" ]

let gen_extra_field =
  QCheck2.Gen.(
    let name =
      map
        (fun s -> "x-" ^ s)
        (string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 12))
    in
    let value =
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun n -> Json.Num (float_of_int n)) (int_range (-1000) 1000);
          map (fun s -> Json.Str s) (small_string ~gen:printable);
          map (fun vs -> Json.Arr vs)
            (list_size (int_range 0 3)
               (map (fun n -> Json.Num (float_of_int n)) small_int));
        ]
    in
    pair name value)

let test_unknown_fields_ignored () =
  with_client (fun c ->
      let frames =
        [
          "{\"id\":1,\"op\":\"ping\",\"trace\":\"abc123\"}";
          "{\"id\":2,\"op\":\"ping\",\"x-priority\":7,\"hints\":{\"retry\":false}}";
          "{\"id\":3,\"op\":\"evaluate\",\"ext\":[1,2],\"params\":{\"model\":\"MobV2\",\"board\":\"VCU108\",\"arch\":\"hybrid/4\"}}";
        ]
      in
      List.iter
        (fun frame ->
          (match Serve.Client.send_line c frame with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "send: %s" msg);
          match Serve.Client.recv_line ~timeout_s:60.0 c with
          | Error msg -> Alcotest.failf "recv: %s" msg
          | Ok line -> (
            match Serve.Protocol.parse_reply line with
            | Ok { Serve.Protocol.outcome = Ok _; _ } -> ()
            | Ok { Serve.Protocol.outcome = Error (code, msg); _ } ->
              Alcotest.failf "frame %s rejected: %s: %s" frame code msg
            | Error msg -> Alcotest.failf "unparsable reply: %s" msg))
        frames)

let prop_unknown_fields_ignored =
  QCheck2.Test.make ~name:"unknown top-level fields -> ok reply" ~count:60
    QCheck2.Gen.(list_size (int_range 1 5) gen_extra_field)
    (fun extras ->
      let extras =
        List.filter (fun (k, _) -> not (List.mem k reserved_fields)) extras
      in
      let frame =
        Json.to_string
          (Json.Obj
             ([ ("id", Json.Num 9.0); ("op", Json.Str "ping") ] @ extras))
      in
      with_client (fun c ->
          (match Serve.Client.send_line c frame with
          | Ok () -> ()
          | Error msg -> QCheck2.Test.fail_reportf "send: %s" msg);
          (match Serve.Client.recv_line ~timeout_s:30.0 c with
          | Error msg -> QCheck2.Test.fail_reportf "no reply: %s" msg
          | Ok line -> (
            match Serve.Protocol.parse_reply line with
            | Ok { Serve.Protocol.outcome = Ok _; _ } -> ()
            | Ok { Serve.Protocol.outcome = Error (code, msg); _ } ->
              QCheck2.Test.fail_reportf
                "decorated ping rejected (%s): %s: %s" frame code msg
            | Error msg ->
              QCheck2.Test.fail_reportf "unparsable reply: %s" msg));
          still_alive c))

(* ------------------------------------------------- final health gate *)

(* Runs last: after every property above hammered the daemon, the pool
   must still evaluate for real and the connection ledger must balance
   (every opened connection was eventually closed). *)
let test_aftermath () =
  with_client (fun c ->
      match
        Serve.Client.evaluate ~timeout_s:120.0 c ~model:"MobV2"
          ~board:"VCU108" ~arch:"hybrid/4"
      with
      | Ok m ->
        let model = Option.get (Cnn.Model_zoo.by_abbreviation "MobV2") in
        let board = Option.get (Platform.Board.by_name "VCU108") in
        let archi = Result.get_ok (Arch.Shorthand.parse model "hybrid/4") in
        let want = Mccm.Evaluate.metrics model board archi in
        Alcotest.(check bool)
          "post-fuzz evaluation bit-exact" true
          (want.Mccm.Metrics.latency_s = m.Mccm.Metrics.latency_s
          && want.Mccm.Metrics.feasible = m.Mccm.Metrics.feasible)
      | Error (code, msg) ->
        Alcotest.failf "pool wedged after fuzz: %s: %s" code msg);
  let counters = Serve.Daemon.counters (daemon ()) in
  let get name = List.assoc name counters in
  let opened = get "connections_opened" and closed = get "connections_closed" in
  (* Our clients are all closed; give the daemon a beat to notice. *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec settle () =
    let closed = List.assoc "connections_closed" (Serve.Daemon.counters (daemon ())) in
    if closed >= opened then closed
    else if Unix.gettimeofday () > deadline then closed
    else (Thread.delay 0.02; settle ())
  in
  let closed = max closed (settle ()) in
  Alcotest.(check int) "connection ledger balances" opened closed;
  Serve.Daemon.shutdown (Lazy.force handle)

let () =
  Alcotest.run "serve-fuzz"
    [
      ( "protocol-fuzz",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_garbage_gets_one_error;
            prop_wrong_shape_gets_error;
            prop_truncated_then_closed;
            prop_oversized_then_resync;
            prop_interleaved_partial_writes;
          ] );
      ( "forward-compat",
        Alcotest.test_case "unknown top-level fields ignored" `Quick
          test_unknown_fields_ignored
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_unknown_fields_ignored ] );
      ("aftermath", [ Alcotest.test_case "pool alive, ledger balanced" `Quick test_aftermath ]);
    ]
