(* Soak tests for the mccm daemon.

   Phase 1 hammers one in-process daemon with N concurrent clients for
   a wall-clock budget (MCCM_SOAK_SECONDS, default ~2 s locally; CI
   runs longer) and then checks the daemon's health ledger: zero
   dropped connections, zero transport errors, every internal counter
   monotone non-decreasing throughout, and a flat RSS — the
   [?store_arch:false] discipline means sustained non-repeating load
   must not grow the session caches without bound.

   Phase 2 initiates a graceful drain mid-traffic and requires every
   in-flight client to see only complete replies, structured
   [shutting_down] refusals, or EOF after the drain began — never a
   torn frame.

   A separate case exercises the real binary: spawn
   [mccm_cli.exe serve] as a subprocess, round-trip a request, send
   SIGTERM, and require a clean exit with the socket unlinked. *)

module Json = Util.Json

let soak_seconds =
  match Sys.getenv_opt "MCCM_SOAK_SECONDS" with
  | Some s -> (try float_of_string s with _ -> 2.0)
  | None -> 2.0

let fresh_sock tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mccm-soak-%s-%d.sock" tag (Unix.getpid ()))

let rss_kb () =
  let ic = open_in "/proc/self/status" in
  let rec find () =
    match input_line ic with
    | line ->
      if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
        Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
      else find ()
    | exception End_of_file -> -1
  in
  let v = find () in
  close_in ic;
  v

(* The request mix: cheap control ops, repeated and non-repeating
   evaluates (distinct (model, board) keys exercise the session
   registry; distinct archs under store_arch=false exercise the flat
   footprint), and short sleeps to keep the queue non-trivial. *)
let mix =
  [|
    `Evaluate ("MobV2", "VCU108", "hybrid/4");
    `Evaluate ("MobV2", "VCU108", "segmented/3");
    `Evaluate ("Res50", "ZC706", "hybrid/3");
    `Evaluate ("XCp", "ZCU102", "segmentedrr/4");
    `Ping;
    `Evaluate ("MobV2", "VCU108", "hybrid/2");
    `Stats;
    `Sleep 0.002;
  |]

type tally = {
  mutable ok : int;
  mutable shutting_down : int;
  mutable overloaded : int;
  mutable protocol_errors : int;  (** anything else structured *)
  mutable transport_errors : int; (** dropped connection / torn frame *)
}

let new_tally () =
  { ok = 0; shutting_down = 0; overloaded = 0; protocol_errors = 0;
    transport_errors = 0 }

let client_loop sock ~stop_at ~draining tally seed =
  let c = Serve.Client.connect_exn sock in
  let i = ref seed in
  (try
     while Unix.gettimeofday () < stop_at () do
       incr i;
       let r =
         match mix.(!i mod Array.length mix) with
         | `Ping -> Serve.Client.ping ~timeout_s:60.0 c
         | `Stats -> Serve.Client.stats ~timeout_s:60.0 c
         | `Sleep s -> Serve.Client.sleep ~timeout_s:60.0 c ~seconds:s
         | `Evaluate (m, b, a) ->
           Result.map
             (fun _ -> Json.Null)
             (Serve.Client.evaluate ~timeout_s:60.0 c ~model:m ~board:b
                ~arch:a)
       in
       match r with
       | Ok _ -> tally.ok <- tally.ok + 1
       | Error ("shutting_down", _) ->
         tally.shutting_down <- tally.shutting_down + 1;
         raise Exit
       | Error ("overloaded", _) ->
         tally.overloaded <- tally.overloaded + 1;
         Thread.delay 0.005
       | Error ("transport", _) ->
         if Atomic.get draining then raise Exit
         else begin
           tally.transport_errors <- tally.transport_errors + 1;
           raise Exit
         end
       | Error _ -> tally.protocol_errors <- tally.protocol_errors + 1
     done
   with Exit -> ());
  Serve.Client.close c

(* Watch the counter ledger for monotonicity while traffic runs. *)
let monotone_watcher d ~stop violations =
  let last = Hashtbl.create 32 in
  while not (Atomic.get stop) do
    List.iter
      (fun (k, v) ->
        (match Hashtbl.find_opt last k with
        | Some prev when v < prev -> Atomic.incr violations
        | _ -> ());
        Hashtbl.replace last k v)
      (Serve.Daemon.counters d);
    Thread.delay 0.05
  done

let test_soak () =
  let sock = fresh_sock "hammer" in
  let cfg =
    {
      (Serve.Daemon.default ~socket_path:sock) with
      Serve.Daemon.workers = 2;
      queue_capacity = 64;
      (* Far below the mix's distinct-request count: the result cache
         churns at full capacity the whole soak, so eviction runs under
         the RSS and monotonicity gates too. *)
      cache_capacity = 4;
    }
  in
  let h = Serve.Daemon.spawn cfg in
  let d = Serve.Daemon.daemon h in
  (* Warm up every (model, board) session first so steady-state RSS is
     measured after one-time cache construction. *)
  let warm = Serve.Client.connect_exn sock in
  Array.iter
    (function
      | `Evaluate (m, b, a) ->
        (match Serve.Client.evaluate ~timeout_s:120.0 warm ~model:m ~board:b ~arch:a with
        | Ok _ -> ()
        | Error (code, msg) -> Alcotest.failf "warmup %s/%s/%s: %s: %s" m b a code msg)
      | _ -> ())
    mix;
  Serve.Client.close warm;
  Gc.compact ();
  let rss_before = rss_kb () in
  let stop_wall = Unix.gettimeofday () +. soak_seconds in
  let draining = Atomic.make false in
  let watcher_stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let watcher = Thread.create (fun () -> monotone_watcher d ~stop:watcher_stop violations) () in
  let n_clients = 4 in
  let tallies = List.init n_clients (fun _ -> new_tally ()) in
  let threads =
    List.mapi
      (fun k t ->
        Thread.create
          (fun () -> client_loop sock ~stop_at:(fun () -> stop_wall) ~draining t (k * 3))
          ())
      tallies
  in
  List.iter Thread.join threads;
  Gc.compact ();
  let rss_after = rss_kb () in
  Atomic.set watcher_stop true;
  Thread.join watcher;
  let total f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
  let replies = total (fun t -> t.ok) in
  Alcotest.(check bool)
    (Printf.sprintf "made progress (%d replies in %.1fs)" replies soak_seconds)
    true (replies > 0);
  Alcotest.(check int) "dropped connections" 0 (total (fun t -> t.transport_errors));
  Alcotest.(check int) "unexpected protocol errors" 0 (total (fun t -> t.protocol_errors));
  Alcotest.(check int) "premature shutting_down" 0 (total (fun t -> t.shutting_down));
  Alcotest.(check int) "counter monotonicity violations" 0 (Atomic.get violations);
  (* Flat RSS: the whole soak may not grow the process by more than a
     fixed allowance (GC noise + socket buffers), independent of how
     many requests ran. *)
  if rss_before > 0 && rss_after > 0 then begin
    let growth_kb = rss_after - rss_before in
    if growth_kb > 65536 then
      Alcotest.failf "RSS grew %d kB over the soak (%d -> %d)" growth_kb
        rss_before rss_after
  end;
  (* The daemon's own ledger agrees that nothing was torn. *)
  let counters = Serve.Daemon.counters d in
  let get k = List.assoc k counters in
  Alcotest.(check int) "write failures" 0 (get "write_failures");
  Alcotest.(check bool) "served requests" true (get "replies" > 0);
  Alcotest.(check bool)
    "cache churned at full capacity" true
    (get "cache_evictions" > 0);
  Serve.Daemon.shutdown h;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

let test_drain_mid_traffic () =
  let sock = fresh_sock "drain" in
  let cfg =
    { (Serve.Daemon.default ~socket_path:sock) with Serve.Daemon.workers = 2 }
  in
  let h = Serve.Daemon.spawn cfg in
  let draining = Atomic.make false in
  let far_future () = Unix.gettimeofday () +. 3600.0 in
  let n_clients = 3 in
  let tallies = List.init n_clients (fun _ -> new_tally ()) in
  let threads =
    List.mapi
      (fun k t ->
        Thread.create
          (fun () -> client_loop sock ~stop_at:far_future ~draining t k)
          ())
      tallies
  in
  (* Let traffic flow, then pull the plug mid-flight. *)
  Thread.delay 0.4;
  Atomic.set draining true;
  Serve.Daemon.shutdown h;
  List.iter Thread.join threads;
  let total f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
  Alcotest.(check bool) "progress before drain" true (total (fun t -> t.ok) > 0);
  Alcotest.(check int)
    "torn frames before drain" 0
    (total (fun t -> t.transport_errors));
  Alcotest.(check int)
    "unexpected protocol errors" 0
    (total (fun t -> t.protocol_errors));
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

(* ------------------------------------------------ subprocess SIGTERM *)

(* Under `dune runtest` the cwd is _build/default/test; under
   `dune exec` it is the workspace root. *)
let cli_path =
  List.find_opt Sys.file_exists
    [
      Filename.concat ".." (Filename.concat "bin" "mccm_cli.exe");
      "_build/default/bin/mccm_cli.exe";
    ]

let test_sigterm_subprocess () =
  match cli_path with
  | None -> Alcotest.skip ()
  | Some cli ->
    let sock = fresh_sock "sigterm" in
    let pid =
      Unix.create_process cli
        [| cli; "serve"; "--socket"; sock; "--workers"; "1" |]
        Unix.stdin Unix.stdout Unix.stderr
    in
    Fun.protect
      ~finally:(fun () ->
        (* Belt and braces: never leave a stray daemon behind. *)
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid) with Unix.Unix_error _ -> ()))
      (fun () ->
        Serve.Daemon.wait_ready ~timeout_s:60.0 sock;
        let c = Serve.Client.connect_exn sock in
        (match
           Serve.Client.evaluate ~timeout_s:120.0 c ~model:"MobV2"
             ~board:"VCU108" ~arch:"hybrid/4"
         with
        | Ok _ -> ()
        | Error (code, msg) ->
          Alcotest.failf "subprocess evaluate: %s: %s" code msg);
        Serve.Client.close c;
        Unix.kill pid Sys.sigterm;
        (match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d on SIGTERM" n
        | _, Unix.WSIGNALED s -> Alcotest.failf "daemon killed by signal %d" s
        | _, Unix.WSTOPPED s -> Alcotest.failf "daemon stopped by signal %d" s);
        Alcotest.(check bool)
          "socket unlinked after SIGTERM" false (Sys.file_exists sock))

let () =
  Alcotest.run "serve-soak"
    [
      ( "soak",
        [
          Alcotest.test_case
            (Printf.sprintf "%d clients, %.0fs budget" 4 soak_seconds)
            `Slow test_soak;
          Alcotest.test_case "graceful drain mid-traffic" `Slow
            test_drain_mid_traffic;
        ] );
      ( "subprocess",
        [
          Alcotest.test_case "SIGTERM drains and unlinks socket" `Slow
            test_sigterm_subprocess;
        ] );
    ]
