(* Tests for the synthesis-surrogate simulator and its agreement with the
   analytical model (the relationship behind Table IV). *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let res50 = Cnn.Model_zoo.resnet50 ()
let mobv2 = Cnn.Model_zoo.mobilenet_v2 ()

(* -------------------------------------------------------------- Dma *)

let test_dma_transfer_time () =
  let dma =
    Sim.Dma.create Sim.Sim_config.default Platform.Board.zc706 ~clock_hz:200e6
  in
  (* 3.2 GB/s at 200 MHz = 16 bytes per cycle. *)
  Alcotest.(check (float 1e-6))
    "1600 bytes = 100 cycles + latency"
    (100.0 +. 256.0)
    (Sim.Dma.transfer_cycles dma ~bytes:1600)

let test_dma_zero_bytes () =
  let dma =
    Sim.Dma.create Sim.Sim_config.default Platform.Board.zc706 ~clock_hz:200e6
  in
  Alcotest.(check (float 1e-9)) "no-op" 5.0 (Sim.Dma.request dma ~at:5.0 ~bytes:0);
  check "nothing moved" 0 (Sim.Dma.total_bytes dma)

let test_dma_accounts_bytes () =
  let dma =
    Sim.Dma.create Sim.Sim_config.default Platform.Board.zc706 ~clock_hz:200e6
  in
  ignore (Sim.Dma.request dma ~at:0.0 ~bytes:100);
  ignore (Sim.Dma.request dma ~at:0.0 ~bytes:200);
  check "300 bytes" 300 (Sim.Dma.total_bytes dma)

(* ------------------------------------------------------- Sim_config *)

let test_achieved_clock () =
  let board = Platform.Board.zcu102 in
  let full =
    Sim.Sim_config.achieved_clock_hz Sim.Sim_config.default board
      ~dsps_used:board.Platform.Board.dsps
      ~bram_used:board.Platform.Board.bram_bytes
  in
  checkb "derated below nominal" true (full < board.Platform.Board.clock_hz);
  let ideal =
    Sim.Sim_config.achieved_clock_hz Sim.Sim_config.ideal board
      ~dsps_used:board.Platform.Board.dsps
      ~bram_used:board.Platform.Board.bram_bytes
  in
  Alcotest.(check (float 1.0)) "ideal keeps nominal"
    board.Platform.Board.clock_hz ideal

(* ----------------------------------------------- model/sim agreement *)

let instances model =
  List.map snd (Arch.Baselines.all_instances model)

let test_accesses_exact () =
  (* The paper: "MCCM off-chip accesses calculations are exact". *)
  List.iter
    (fun archi ->
      let built = Builder.Build.build res50 Platform.Board.vcu108 archi in
      let est = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
      let ref_ = (Sim.Simulate.run built).Sim.Simulate.metrics in
      check
        (Printf.sprintf "accesses equal for %s" archi.Arch.Block.name)
        (Mccm.Metrics.accesses_bytes ref_)
        (Mccm.Metrics.accesses_bytes est))
    (instances res50)

let test_buffer_banked_at_least_model () =
  List.iter
    (fun archi ->
      let built = Builder.Build.build mobv2 Platform.Board.zcu102 archi in
      let est = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
      let ref_ = (Sim.Simulate.run built).Sim.Simulate.metrics in
      checkb "bank rounding only grows buffers" true
        (ref_.Mccm.Metrics.buffer_bytes >= est.Mccm.Metrics.buffer_bytes))
    (instances mobv2)

let test_sim_slower_than_model () =
  (* Overheads and derating only slow the surrogate down. *)
  List.iter
    (fun archi ->
      let built = Builder.Build.build mobv2 Platform.Board.vcu108 archi in
      let est = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
      let ref_ = (Sim.Simulate.run built).Sim.Simulate.metrics in
      checkb "sim latency >= model" true
        (ref_.Mccm.Metrics.latency_s >= est.Mccm.Metrics.latency_s *. 0.999);
      checkb "sim throughput <= model" true
        (ref_.Mccm.Metrics.throughput_ips
        <= est.Mccm.Metrics.throughput_ips *. 1.001))
    (instances mobv2)

let accuracy_floor ~board ~model ~floor =
  List.iter
    (fun archi ->
      let built = Builder.Build.build model board archi in
      let est = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
      let ref_ = (Sim.Simulate.run built).Sim.Simulate.metrics in
      let c = Report.Accuracy.compare_metrics ~reference:ref_ ~estimated:est in
      checkb
        (Printf.sprintf "%s latency accuracy %.1f >= %.0f" archi.Arch.Block.name
           c.Report.Accuracy.latency floor)
        true
        (c.Report.Accuracy.latency >= floor);
      checkb
        (Printf.sprintf "%s throughput accuracy %.1f >= %.0f"
           archi.Arch.Block.name c.Report.Accuracy.throughput floor)
        true
        (c.Report.Accuracy.throughput >= floor))
    (instances model)

let test_accuracy_floor_vcu108 () =
  (* The paper's Table IV worst case is 80.7%; hold a conservative 75%
     floor across every baseline instance. *)
  accuracy_floor ~board:Platform.Board.vcu108 ~model:res50 ~floor:75.0;
  accuracy_floor ~board:Platform.Board.vcu108 ~model:mobv2 ~floor:75.0

let test_ideal_config_matches_model () =
  (* With all overheads disabled, the surrogate collapses exactly onto
     the analytical model: agreement is ulp-level (the two sum in
     different units), and byte counts match to the byte. *)
  List.iter
    (fun archi ->
      let built = Builder.Build.build mobv2 Platform.Board.zcu102 archi in
      let est = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
      let ref_ =
        (Sim.Simulate.run ~cfg:Sim.Sim_config.ideal built).Sim.Simulate.metrics
      in
      let ratio = ref_.Mccm.Metrics.latency_s /. est.Mccm.Metrics.latency_s in
      checkb
        (Printf.sprintf "%s ideal latency ratio %.15f exact"
           archi.Arch.Block.name ratio)
        true
        (Float.abs (ratio -. 1.0) <= 1e-9);
      check
        (archi.Arch.Block.name ^ " ideal accesses exact")
        (Mccm.Metrics.accesses_bytes est)
        (Mccm.Metrics.accesses_bytes ref_))
    [
      Arch.Baselines.segmented ~ces:4 mobv2;
      Arch.Baselines.segmented_rr ~ces:4 mobv2;
      Arch.Baselines.hybrid ~ces:4 mobv2;
    ]

let test_sim_deterministic () =
  let run () =
    (Sim.Simulate.evaluate res50 Platform.Board.zc706
       (Arch.Baselines.segmented_rr ~ces:3 res50))
      .Sim.Simulate.metrics
  in
  let a = run () and b = run () in
  Alcotest.(check (float 0.0))
    "same latency" a.Mccm.Metrics.latency_s b.Mccm.Metrics.latency_s;
  check "same buffers" a.Mccm.Metrics.buffer_bytes b.Mccm.Metrics.buffer_bytes

(* ------------------------------------------------------- properties *)

let prop_accesses_exact_all_boards =
  QCheck2.Test.make ~name:"access parity on random instances/boards" ~count:20
    QCheck2.Gen.(
      triple (int_range 2 11)
        (oneofl [ `Seg; `Rr; `Hyb ])
        (oneofl Platform.Board.all))
    (fun (ces, style, board) ->
      let archi =
        match style with
        | `Seg -> Arch.Baselines.segmented ~ces mobv2
        | `Rr -> Arch.Baselines.segmented_rr ~ces mobv2
        | `Hyb -> Arch.Baselines.hybrid ~ces mobv2
      in
      let built = Builder.Build.build mobv2 board archi in
      let est = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
      let ref_ = (Sim.Simulate.run built).Sim.Simulate.metrics in
      Mccm.Metrics.accesses_bytes est = Mccm.Metrics.accesses_bytes ref_)

(* ------------------------------------------------------------ Trace *)

let test_trace_collects_all_tiles () =
  let built =
    Builder.Build.build mobv2 Platform.Board.zcu102
      (Arch.Baselines.segmented_rr ~ces:4 mobv2)
  in
  match Sim.Simulate.trace_block built ~block:0 with
  | None -> Alcotest.fail "pipelined block must trace"
  | Some trace ->
    (* One Tile event per (layer, tile) of one input. *)
    let expected =
      match built.Builder.Build.plan.Builder.Buffer_alloc.block_plans.(0) with
      | Builder.Buffer_alloc.Plan_pipelined p ->
        let acc = ref 0 in
        Array.iteri
          (fun i rows ->
            let layer = Cnn.Model.layer mobv2 i in
            acc :=
              !acc
              + Builder.Tiling.num_row_tiles layer ~rows
                * p.Builder.Buffer_alloc.width_split)
          p.Builder.Buffer_alloc.tile_rows;
        !acc
      | Builder.Buffer_alloc.Plan_single _ -> Alcotest.fail "wrong plan"
    in
    check "tile events" expected (Sim.Trace.tile_count trace);
    let lo, hi = Sim.Trace.span trace in
    checkb "positive span" true (hi > lo);
    (* Events are causally ordered per engine. *)
    let by_engine = Hashtbl.create 8 in
    List.iter
      (function
        | Sim.Trace.Tile { engine; start; finish; _ } ->
          checkb "finish after start" true (finish > start);
          (match Hashtbl.find_opt by_engine engine with
          | Some prev -> checkb "engine serial" true (start >= prev -. 1e-9)
          | None -> ());
          Hashtbl.replace by_engine engine finish
        | Sim.Trace.Burst _ -> ())
      (Sim.Trace.events trace)

let test_trace_single_block_none () =
  let built =
    Builder.Build.build mobv2 Platform.Board.zcu102
      (Arch.Baselines.segmented ~ces:4 mobv2)
  in
  checkb "single blocks yield no trace" true
    (Sim.Simulate.trace_block built ~block:0 = None)

let test_trace_gantt_renders () =
  let built =
    Builder.Build.build mobv2 Platform.Board.zcu102
      (Arch.Baselines.segmented_rr ~ces:3 mobv2)
  in
  match Sim.Simulate.trace_block built ~block:0 with
  | None -> Alcotest.fail "expected a trace"
  | Some trace ->
    let s = Sim.Trace.render_gantt ~width:60 trace in
    checkb "has engine lanes" true
      (String.split_on_char '\n' s
      |> List.exists (fun l -> String.length l > 3 && String.sub l 0 2 = "CE"))

let test_trace_out_of_range () =
  let built =
    Builder.Build.build mobv2 Platform.Board.zcu102
      (Arch.Baselines.segmented ~ces:2 mobv2)
  in
  Alcotest.check_raises "range"
    (Invalid_argument "Simulate.trace_block: block index out of range")
    (fun () -> ignore (Sim.Simulate.trace_block built ~block:9))

let properties =
  List.map QCheck_alcotest.to_alcotest [ prop_accesses_exact_all_boards ]

let () =
  Alcotest.run "sim"
    [
      ( "dma",
        [
          Alcotest.test_case "transfer time" `Quick test_dma_transfer_time;
          Alcotest.test_case "zero bytes" `Quick test_dma_zero_bytes;
          Alcotest.test_case "byte accounting" `Quick test_dma_accounts_bytes;
        ] );
      ( "config",
        [ Alcotest.test_case "achieved clock" `Quick test_achieved_clock ] );
      ( "agreement",
        [
          Alcotest.test_case "accesses exact" `Quick test_accesses_exact;
          Alcotest.test_case "buffers banked" `Quick
            test_buffer_banked_at_least_model;
          Alcotest.test_case "sim slower" `Quick test_sim_slower_than_model;
          Alcotest.test_case "accuracy floor" `Slow test_accuracy_floor_vcu108;
          Alcotest.test_case "ideal config" `Quick
            test_ideal_config_matches_model;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "collects all tiles" `Quick
            test_trace_collects_all_tiles;
          Alcotest.test_case "single block none" `Quick
            test_trace_single_block_none;
          Alcotest.test_case "gantt renders" `Quick test_trace_gantt_renders;
          Alcotest.test_case "out of range" `Quick test_trace_out_of_range;
        ] );
      ("properties", properties);
    ]
