(* Tests for the precomputed per-layer table (Cnn.Table), the parallel
   chunking helper (Util.Parallel) and the bound-pruned, Domains-parallel
   exhaustive scan (Dse.Enumerate.exhaustive_best).

   The load-bearing claims are all bit-exactness claims: the table path
   must agree with the list-fold reference path to the last bit, and the
   pruned/parallel scans must return exactly what the sequential
   unpruned scan returns. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------- table vs list fold *)

(* Every aggregate the table serves must equal the Model/Layer reference
   computation on random models and random ranges. *)
let prop_table_matches_model =
  QCheck2.Test.make ~name:"table aggregates equal list-fold reference"
    ~count:100
    QCheck2.Gen.(pair Generators.model (pair small_nat small_nat))
    (fun (model, (a, b)) ->
      let t = Cnn.Table.of_model model in
      let n = Cnn.Model.num_layers model in
      let first = a mod n and last = b mod n in
      let first, last = (min first last, max first last) in
      Cnn.Table.macs_range t ~first ~last
      = Cnn.Model.macs_in_range model ~first ~last
      && Cnn.Table.weights_range t ~first ~last
         = Cnn.Model.weights_in_range model ~first ~last
      && Cnn.Table.max_fms_range t ~first ~last
         = Cnn.Model.max_fms_elements model ~first ~last
      && Cnn.Table.total_macs t
         = Cnn.Model.macs_in_range model ~first:0 ~last:(n - 1)
      && Cnn.Table.total_weights t
         = Cnn.Model.weights_in_range model ~first:0 ~last:(n - 1))

let prop_table_per_layer_scalars =
  QCheck2.Test.make ~name:"per-layer scalars equal Layer accessors"
    ~count:100 Generators.model (fun model ->
      let t = Cnn.Table.of_model model in
      let ok = ref true in
      for i = 0 to Cnn.Model.num_layers model - 1 do
        let l = Cnn.Model.layer model i in
        let ef, ec, eh, ew, ekh, ekw = Cnn.Table.extents t i in
        ok :=
          !ok
          && Cnn.Table.macs t i = Cnn.Layer.macs l
          && Cnn.Table.weight_elements t i = Cnn.Layer.weight_elements l
          && Cnn.Table.ifm_elements t i = Cnn.Layer.ifm_elements l
          && Cnn.Table.ofm_elements t i = Cnn.Layer.ofm_elements l
          && Cnn.Table.fms_elements t i = Cnn.Layer.fms_elements l
          && ef = Cnn.Layer.loop_extent l `Filters
          && ec = Cnn.Layer.loop_extent l `Channels
          && eh = Cnn.Layer.loop_extent l `Height
          && ew = Cnn.Layer.loop_extent l `Width
          && ekh = Cnn.Layer.loop_extent l `Kernel_h
          && ekw = Cnn.Layer.loop_extent l `Kernel_w
      done;
      !ok)

(* The whole evaluation stack must be bit-identical with and without the
   table: same model, board and architecture, full Metrics.t equality. *)
let prop_table_path_bit_identical =
  QCheck2.Test.make ~name:"table evaluation path is bit-identical"
    ~count:60 Generators.case (fun case ->
      let archi = Validate.Case.materialize case in
      let metrics use_table =
        let s =
          Mccm.Eval_session.create ~memoize:false ~use_table
            case.Validate.Case.model case.Validate.Case.board
        in
        Mccm.Eval_session.metrics s archi
      in
      metrics true = metrics false)

(* ------------------------------------------------------ Util.Parallel *)

let test_bounds_partition () =
  List.iter
    (fun (chunks, n) ->
      let parts = Util.Parallel.bounds ~chunks ~n in
      (* The chunk count is capped at [n]: asking for more chunks than
         items returns [n] singletons, never empty chunks that would
         each still cost a domain spawn (the pre-pool regression). *)
      let expect = max 1 (min chunks (max 1 n)) in
      checki "chunk count" expect (Array.length parts);
      let lo0, _ = parts.(0) in
      checki "starts at 0" 0 lo0;
      let _, hi_last = parts.(Array.length parts - 1) in
      checki "ends at n" n hi_last;
      Array.iteri
        (fun i (lo, hi) ->
          checkb "contiguous" true
            (i = 0 || snd parts.(i - 1) = lo);
          checkb "non-empty while n > 0" true (n = 0 || hi > lo);
          checkb "sizes differ by at most one" true
            (hi - lo >= n / expect && hi - lo <= (n / expect) + 1))
        parts)
    [ (1, 10); (3, 10); (4, 12); (7, 5); (5, 0); (8, 3); (3, 3) ]

let test_effective_clamps () =
  checki "never below 1" 1 (Util.Parallel.effective ~domains:0 ~n:10 ());
  checki "clamped by n" 3
    (Util.Parallel.effective ~clamp:false ~domains:8 ~n:3 ());
  checki "unclamped honours request" 4
    (Util.Parallel.effective ~clamp:false ~domains:4 ~n:100 ());
  checkb "clamped by recommended count" true
    (Util.Parallel.effective ~domains:64 ~n:1000 ()
    <= Util.Parallel.recommended ())

let test_chunked_map_order () =
  (* The concatenated chunk results must reproduce the sequential scan,
     in order, for every domain count. *)
  let n = 37 in
  let seq = List.init n (fun i -> i * i) in
  List.iter
    (fun domains ->
      let out =
        List.concat
          (Util.Parallel.chunked_map ~clamp:false ~domains ~n
             (fun ~chunk:_ ~lo ~hi -> List.init (hi - lo) (fun k ->
                  let i = lo + k in
                  i * i)))
      in
      checkb (Printf.sprintf "domains=%d" domains) true (out = seq))
    [ 1; 2; 4; 5 ]

(* ------------------------------- parallel + pruned exhaustive scans *)

let mobv2 = Cnn.Model_zoo.mobilenet_v2 ()
let board = Platform.Board.vcu108

let test_exhaustive_domain_invariant () =
  (* The full evaluated list (order included) must be identical for
     every domain count, even when the domains are oversubscribed. *)
  let run domains =
    Dse.Enumerate.exhaustive ~max_specs:120 ~domains ~clamp:false ~ces:3
      mobv2 board
  in
  let reference = run 1 in
  List.iter
    (fun d ->
      checkb (Printf.sprintf "domains=%d identical" d) true (run d = reference))
    [ 2; 4 ]

let test_exhaustive_best_matches_unpruned_sequential () =
  (* The pruned, parallel scan must return the same best design as the
     sequential unpruned scan, for both objectives and domains 1/2/4. *)
  List.iter
    (fun objective ->
      let reference, ref_stats =
        Dse.Enumerate.exhaustive_best ~max_specs:150 ~domains:1 ~prune:false
          ~objective ~ces:3 mobv2 board
      in
      checki "unpruned evaluates everything" ref_stats.Dse.Enumerate.enumerated
        ref_stats.Dse.Enumerate.evaluated;
      List.iter
        (fun domains ->
          let best, stats =
            Dse.Enumerate.exhaustive_best ~max_specs:150 ~domains ~clamp:false
              ~prune:true ~objective ~ces:3 mobv2 board
          in
          checkb
            (Printf.sprintf "domains=%d same best" domains)
            true (best = reference);
          checki "evaluated + pruned = enumerated" stats.Dse.Enumerate.enumerated
            (stats.Dse.Enumerate.evaluated + stats.Dse.Enumerate.pruned))
        [ 1; 2; 4 ])
    [ `Throughput; `Latency ]

let test_exhaustive_best_agrees_with_exhaustive () =
  (* The scan's winner must be the argmax of the plain evaluated list
     (first occurrence on ties). *)
  let evaluated = Dse.Enumerate.exhaustive ~max_specs:150 ~ces:3 mobv2 board in
  let best, _ =
    Dse.Enumerate.exhaustive_best ~max_specs:150 ~objective:`Throughput ~ces:3
      mobv2 board
  in
  let by_list =
    List.fold_left
      (fun acc (e : Dse.Explore.evaluated) ->
        match acc with
        | Some (b : Dse.Explore.evaluated)
          when b.metrics.Mccm.Metrics.throughput_ips
               >= e.metrics.Mccm.Metrics.throughput_ips ->
          acc
        | _ -> Some e)
      None evaluated
  in
  checkb "argmax of evaluated list" true (best = by_list)

(* ------------------------------------------------ bound admissibility *)

let prop_bounds_admissible =
  let table = Cnn.Table.of_model mobv2 in
  let b = Dse.Enumerate.bounds table board in
  let session = Mccm.Eval_session.create mobv2 board in
  QCheck2.Test.make ~name:"bounds are admissible on random specs" ~count:60
    (Generators.custom_spec ~num_layers:(Cnn.Model.num_layers mobv2))
    (fun spec ->
      let ub = Dse.Enumerate.throughput_upper_bound b spec in
      let lb = Dse.Enumerate.latency_lower_bound b spec in
      let m =
        Mccm.Eval_session.metrics session (Arch.Custom.arch_of_spec mobv2 spec)
      in
      (not m.Mccm.Metrics.feasible)
      || (ub >= m.Mccm.Metrics.throughput_ips
         && lb <= m.Mccm.Metrics.latency_s))

(* ---------------------------------------------------------- plumbing *)

let () =
  Alcotest.run "table"
    [
      ( "table",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_table_matches_model;
            prop_table_per_layer_scalars;
            prop_table_path_bit_identical;
          ] );
      ( "parallel",
        [
          Alcotest.test_case "bounds partition [0,n)" `Quick
            test_bounds_partition;
          Alcotest.test_case "effective clamps" `Quick test_effective_clamps;
          Alcotest.test_case "chunked_map preserves order" `Quick
            test_chunked_map_order;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "domain-count invariant" `Quick
            test_exhaustive_domain_invariant;
          Alcotest.test_case "pruned+parallel equals unpruned sequential"
            `Quick test_exhaustive_best_matches_unpruned_sequential;
          Alcotest.test_case "agrees with plain exhaustive" `Quick
            test_exhaustive_best_agrees_with_exhaustive;
        ] );
      ( "bounds",
        List.map QCheck_alcotest.to_alcotest [ prop_bounds_admissible ] );
    ]
