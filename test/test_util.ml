(* Unit and property tests for the util library. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------- Prng *)

let test_prng_determinism () =
  let a = Util.Prng.create ~seed:7L and b = Util.Prng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same stream" (Util.Prng.next_int64 a) (Util.Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Util.Prng.create ~seed:1L and b = Util.Prng.create ~seed:2L in
  checkb "different seeds diverge" true
    (Util.Prng.next_int64 a <> Util.Prng.next_int64 b)

let test_prng_int_bounds () =
  let rng = Util.Prng.create ~seed:3L in
  for _ = 1 to 1000 do
    let v = Util.Prng.int rng ~bound:17 in
    checkb "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let rng = Util.Prng.create ~seed:3L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Util.Prng.int rng ~bound:0))

let test_prng_range () =
  let rng = Util.Prng.create ~seed:4L in
  for _ = 1 to 500 do
    let v = Util.Prng.int_in_range rng ~lo:5 ~hi:9 in
    checkb "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_prng_float_unit_interval () =
  let rng = Util.Prng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Util.Prng.float rng in
    checkb "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_choose () =
  let rng = Util.Prng.create ~seed:6L in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    checkb "member" true (Array.mem (Util.Prng.choose rng arr) arr)
  done

let test_prng_choose_empty () =
  let rng = Util.Prng.create ~seed:6L in
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array")
    (fun () -> ignore (Util.Prng.choose rng [||]))

let test_prng_shuffle_permutation () =
  let rng = Util.Prng.create ~seed:8L in
  let arr = Array.init 50 Fun.id in
  Util.Prng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_distinct_ints () =
  let rng = Util.Prng.create ~seed:9L in
  for _ = 1 to 50 do
    let l = Util.Prng.sorted_distinct_ints rng ~count:6 ~lo:3 ~hi:20 in
    check "count" 6 (List.length l);
    check "distinct" 6 (List.length (List.sort_uniq compare l));
    checkb "sorted" true (l = List.sort compare l);
    List.iter (fun v -> checkb "range" true (v >= 3 && v <= 20)) l
  done

let test_prng_distinct_full_range () =
  let rng = Util.Prng.create ~seed:10L in
  let l = Util.Prng.sorted_distinct_ints rng ~count:5 ~lo:0 ~hi:4 in
  Alcotest.(check (list int)) "whole range" [ 0; 1; 2; 3; 4 ] l

let test_prng_copy_independent () =
  let a = Util.Prng.create ~seed:11L in
  ignore (Util.Prng.next_int64 a);
  let b = Util.Prng.copy a in
  Alcotest.(check int64) "same next" (Util.Prng.next_int64 a)
    (Util.Prng.next_int64 b)

(* --------------------------------------------------------- Int_math *)

let test_ceil_div () =
  check "7/2" 4 (Util.Int_math.ceil_div 7 2);
  check "8/2" 4 (Util.Int_math.ceil_div 8 2);
  check "0/5" 0 (Util.Int_math.ceil_div 0 5);
  check "1/5" 1 (Util.Int_math.ceil_div 1 5)

let test_ceil_div_invalid () =
  Alcotest.check_raises "zero divisor"
    (Invalid_argument "Int_math.ceil_div: non-positive divisor") (fun () ->
      ignore (Util.Int_math.ceil_div 4 0))

let test_round_up_to () =
  check "7 to 4" 8 (Util.Int_math.round_up_to ~multiple:4 7);
  check "8 to 4" 8 (Util.Int_math.round_up_to ~multiple:4 8);
  check "0 to 4" 0 (Util.Int_math.round_up_to ~multiple:4 0)

let test_pow () =
  check "2^10" 1024 (Util.Int_math.pow 2 10);
  check "3^0" 1 (Util.Int_math.pow 3 0);
  check "7^3" 343 (Util.Int_math.pow 7 3)

let test_isqrt () =
  check "isqrt 0" 0 (Util.Int_math.isqrt 0);
  check "isqrt 15" 3 (Util.Int_math.isqrt 15);
  check "isqrt 16" 4 (Util.Int_math.isqrt 16);
  check "isqrt 17" 4 (Util.Int_math.isqrt 17)

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Util.Int_math.divisors 12);
  Alcotest.(check (list int)) "1" [ 1 ] (Util.Int_math.divisors 1);
  Alcotest.(check (list int)) "49" [ 1; 7; 49 ] (Util.Int_math.divisors 49)

let test_closest_divisor () =
  check "closest to 5 in 12" 4 (Util.Int_math.closest_divisor 12 ~target:5);
  check "closest to 6 in 12" 6 (Util.Int_math.closest_divisor 12 ~target:6);
  check "tie resolves down" 1 (Util.Int_math.closest_divisor 4 ~target:0)

let test_clamp () =
  check "below" 2 (Util.Int_math.clamp ~lo:2 ~hi:5 0);
  check "above" 5 (Util.Int_math.clamp ~lo:2 ~hi:5 9);
  check "inside" 3 (Util.Int_math.clamp ~lo:2 ~hi:5 3)

let test_binomial () =
  check "C(5,2)" 10 (Util.Int_math.binomial 5 2);
  check "C(5,0)" 1 (Util.Int_math.binomial 5 0);
  check "C(5,5)" 1 (Util.Int_math.binomial 5 5);
  check "C(5,6)" 0 (Util.Int_math.binomial 5 6);
  check "C(52,5)" 2598960 (Util.Int_math.binomial 52 5)

let test_compositions () =
  check "10 into 3" 36 (Util.Int_math.compositions 10 3);
  check "n into 1" 1 (Util.Int_math.compositions 7 1);
  check "n into n" 1 (Util.Int_math.compositions 7 7)

(* ------------------------------------------------------------ Stats *)

let checkf = Alcotest.(check (float 1e-9))

let test_stats_basic () =
  checkf "mean" 2.0 (Util.Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkf "min" 1.0 (Util.Stats.minimum [ 3.0; 1.0; 2.0 ]);
  checkf "max" 3.0 (Util.Stats.maximum [ 3.0; 1.0; 2.0 ]);
  checkf "geomean" 2.0 (Util.Stats.geomean [ 1.0; 2.0; 4.0 ]);
  checkf "stddev const" 0.0 (Util.Stats.stddev [ 5.0; 5.0; 5.0 ])

let test_stats_percentile () =
  let l = [ 1.0; 2.0; 3.0; 4.0 ] in
  checkf "p0" 1.0 (Util.Stats.percentile l ~p:0.0);
  checkf "p50" 2.0 (Util.Stats.percentile l ~p:50.0);
  checkf "p100" 4.0 (Util.Stats.percentile l ~p:100.0)

let test_stats_arg () =
  check "argmin" 3 (Util.Stats.argmin float_of_int [ 5; 3; 4 ]);
  check "argmax" 5 (Util.Stats.argmax float_of_int [ 5; 3; 4 ])

let test_stats_empty () =
  Alcotest.check_raises "mean []" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Util.Stats.mean []))

let test_stats_quantile () =
  let l = [ 4.0; 1.0; 3.0; 2.0 ] in
  checkf "q0 = min" 1.0 (Util.Stats.quantile l ~q:0.0);
  checkf "q1 = max" 4.0 (Util.Stats.quantile l ~q:1.0);
  checkf "median interpolates" 2.5 (Util.Stats.quantile l ~q:0.5);
  checkf "q0.25" 1.75 (Util.Stats.quantile l ~q:0.25);
  checkf "singleton" 7.0 (Util.Stats.quantile [ 7.0 ] ~q:0.9)

let test_stats_quantile_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.quantile: empty list") (fun () ->
      ignore (Util.Stats.quantile [] ~q:0.5));
  Alcotest.check_raises "q > 1"
    (Invalid_argument "Stats.quantile: q out of range") (fun () ->
      ignore (Util.Stats.quantile [ 1.0 ] ~q:1.5));
  Alcotest.check_raises "q < 0"
    (Invalid_argument "Stats.quantile: q out of range") (fun () ->
      ignore (Util.Stats.quantile [ 1.0 ] ~q:(-0.1)))

(* -------------------------------------------------------- Partition *)

let brute_force_min_max weights parts =
  (* Enumerate all compositions, return the minimal max part sum. *)
  let n = Array.length weights in
  let best = ref max_int in
  let rec go start parts_left current_max =
    if parts_left = 1 then begin
      let s = Util.Partition.range_weight ~weights ~first:start ~last:(n - 1) in
      best := min !best (max current_max s)
    end
    else
      for last = start to n - parts_left do
        let s = Util.Partition.range_weight ~weights ~first:start ~last in
        go (last + 1) (parts_left - 1) (max current_max s)
      done
  in
  go 0 parts 0;
  !best

let test_partition_structure () =
  let weights = [| 5; 1; 4; 2; 8; 3 |] in
  let ranges = Util.Partition.min_max_partition ~weights ~parts:3 in
  check "3 parts" 3 (List.length ranges);
  let expected_start = ref 0 in
  List.iter
    (fun (first, last) ->
      check "contiguous" !expected_start first;
      checkb "non-empty" true (last >= first);
      expected_start := last + 1)
    ranges;
  check "covers all" 6 !expected_start

let test_partition_optimality () =
  let cases =
    [ ([| 5; 1; 4; 2; 8; 3 |], 3); ([| 1; 1; 1; 1 |], 2);
      ([| 9; 1; 1; 1; 9 |], 3); ([| 2; 4; 6; 8; 10; 1; 3 |], 4) ]
  in
  List.iter
    (fun (weights, parts) ->
      let ranges = Util.Partition.min_max_partition ~weights ~parts in
      let achieved =
        List.fold_left
          (fun acc (first, last) ->
            max acc (Util.Partition.range_weight ~weights ~first ~last))
          0 ranges
      in
      check "optimal max part" (brute_force_min_max weights parts) achieved)
    cases

let test_partition_singletons () =
  let weights = [| 3; 1; 4 |] in
  Alcotest.(check (list (pair int int)))
    "n parts = singletons"
    [ (0, 0); (1, 1); (2, 2) ]
    (Util.Partition.min_max_partition ~weights ~parts:3)

let test_partition_invalid () =
  Alcotest.check_raises "too many parts"
    (Invalid_argument "Partition.min_max_partition: 4 parts for 3 elements")
    (fun () ->
      ignore (Util.Partition.min_max_partition ~weights:[| 1; 2; 3 |] ~parts:4))

(* ------------------------------------------------------------ Table *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_render () =
  let t =
    Util.Table.create ~title:"T"
      ~columns:[ ("a", Util.Table.Left); ("b", Util.Table.Right) ]
      ()
  in
  Util.Table.add_row t [ "x"; "1" ];
  Util.Table.add_row t [ "yy"; "22" ];
  let s = Util.Table.render t in
  checkb "has title" true (String.length s > 0 && s.[0] = 'T');
  checkb "mentions yy" true (contains s "yy");
  checkb "mentions header" true (contains s "a")

let test_table_markdown () =
  let t =
    Util.Table.create ~title:"T"
      ~columns:[ ("a", Util.Table.Left); ("b", Util.Table.Right) ]
      ()
  in
  Util.Table.add_row t [ "x|y"; "1" ];
  Util.Table.add_separator t;
  Util.Table.add_row t [ "z"; "2" ];
  let md = Util.Table.render_markdown t in
  checkb "title heading" true (contains md "### T");
  checkb "alignment row" true (contains md "| :--- | ---: |");
  checkb "escaped pipe" true (contains md "x\\|y");
  checkb "separator dropped" false (contains md "---|---|---")

let test_table_cell_mismatch () =
  let t = Util.Table.create ~columns:[ ("a", Util.Table.Left) ] () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Util.Table.add_row t [ "x"; "y" ])

(* ------------------------------------------------------------ Units *)

let test_units () =
  check "1 MiB" 1048576 Util.Units.mib;
  checkf "mib_of_bytes" 2.0 (Util.Units.mib_of_bytes (2 * 1048576));
  check "bytes_of_mib" 1048576 (Util.Units.bytes_of_mib 1.0);
  Alcotest.(check string) "pp_bytes" "2.00 MiB"
    (Format.asprintf "%a" Util.Units.pp_bytes (2 * 1048576));
  Alcotest.(check string) "pp_rate" "19.2 GB/s"
    (Format.asprintf "%a" Util.Units.pp_rate 19.2e9);
  Alcotest.(check string) "pp_seconds ms" "1.500 ms"
    (Format.asprintf "%a" Util.Units.pp_seconds 0.0015)

(* ------------------------------------------------------- properties *)

let prop_ceil_div =
  QCheck2.Test.make ~name:"ceil_div bounds"
    QCheck2.Gen.(pair (int_bound 10000) (int_range 1 100))
    (fun (a, b) ->
      let q = Util.Int_math.ceil_div a b in
      (q * b >= a) && ((q - 1) * b < a || q = 0))

let prop_divisors =
  QCheck2.Test.make ~name:"divisors divide and include 1 and n"
    QCheck2.Gen.(int_range 1 5000)
    (fun n ->
      let ds = Util.Int_math.divisors n in
      List.for_all (fun d -> n mod d = 0) ds
      && List.mem 1 ds && List.mem n ds
      && ds = List.sort compare ds)

let prop_partition_cover =
  QCheck2.Test.make ~name:"partition covers contiguously"
    QCheck2.Gen.(
      pair (array_size (int_range 2 12) (int_range 0 50)) (int_range 1 5))
    (fun (weights, parts) ->
      QCheck2.assume (parts <= Array.length weights);
      let ranges = Util.Partition.min_max_partition ~weights ~parts in
      let flat =
        List.concat_map
          (fun (a, b) -> List.init (b - a + 1) (fun i -> a + i))
          ranges
      in
      flat = List.init (Array.length weights) Fun.id)

let prop_prng_distinct =
  QCheck2.Test.make ~name:"sorted_distinct_ints honest"
    QCheck2.Gen.(pair (int_range 0 30) (int_range 0 1000))
    (fun (count, seed) ->
      let rng = Util.Prng.create ~seed:(Int64.of_int seed) in
      let l = Util.Prng.sorted_distinct_ints rng ~count ~lo:0 ~hi:40 in
      List.length l = count
      && List.length (List.sort_uniq compare l) = count
      && List.for_all (fun v -> v >= 0 && v <= 40) l)

(* Independent quantile reference on the sorted array: value at
   fractional rank q(n - 1), floor/ceil indexing — written differently
   from the library's clamped-interval form on purpose. *)
let reference_quantile l q =
  let a = Array.of_list l in
  Array.sort compare a;
  let h = q *. float_of_int (Array.length a - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = int_of_float (Float.ceil h) in
  a.(lo) +. ((h -. float_of_int lo) *. (a.(hi) -. a.(lo)))

let quantile_input =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 40) (float_bound_inclusive 1000.0))
      (float_bound_inclusive 1.0))

let prop_quantile_reference =
  QCheck2.Test.make ~name:"quantile matches sorted-array reference"
    quantile_input
    (fun (l, q) ->
      let v = Util.Stats.quantile l ~q in
      let r = reference_quantile l q in
      Float.abs (v -. r) <= 1e-9 *. Float.max 1.0 (Float.abs r))

let prop_quantile_bounded_monotone =
  QCheck2.Test.make ~name:"quantile bounded, monotone, order-insensitive"
    QCheck2.Gen.(pair quantile_input (float_bound_inclusive 1.0))
    (fun ((l, q1), q2) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      let vlo = Util.Stats.quantile l ~q:lo in
      let vhi = Util.Stats.quantile l ~q:hi in
      vlo >= Util.Stats.minimum l
      && vhi <= Util.Stats.maximum l
      && vlo <= vhi
      && Util.Stats.quantile (List.rev l) ~q:lo = vlo)

(* The best-first frontier in Dse.Enumerate leans on the heap popping
   in exact cmp order; check it against List.sort on arbitrary input,
   including pushes interleaved with pops. *)
let prop_heap_pop_sorted =
  QCheck2.Test.make ~name:"heap pops every element in cmp order"
    QCheck2.Gen.(list_size (int_range 0 80) (int_bound 1000))
    (fun l ->
      let h = Util.Heap.create ~cmp:compare in
      List.iter (Util.Heap.push h) l;
      let peek_ok =
        match (Util.Heap.peek h, l) with
        | None, [] -> true
        | Some p, _ -> p = List.fold_left min max_int l
        | None, _ :: _ -> false
      in
      let rec drain acc =
        match Util.Heap.pop h with
        | None -> List.rev acc
        | Some v -> drain (v :: acc)
      in
      peek_ok
      && drain [] = List.sort compare l
      && Util.Heap.is_empty h
      && Util.Heap.length h = 0)

let prop_heap_interleaved =
  QCheck2.Test.make ~name:"heap min invariant under interleaved push/pop"
    QCheck2.Gen.(list_size (int_range 1 60) (pair bool (int_bound 1000)))
    (fun ops ->
      let h = Util.Heap.create ~cmp:compare in
      let module S = Set.Make (struct
        type t = int * int

        let compare = compare
      end) in
      (* Pair each value with a unique stamp so the reference multiset
         survives duplicates. *)
      let stamp = ref 0 in
      let reference = ref S.empty in
      List.for_all
        (fun (is_pop, v) ->
          if is_pop then (
            match (Util.Heap.pop h, S.min_elt_opt !reference) with
            | None, None -> true
            | Some x, Some ((m, _) as e) ->
              reference := S.remove e !reference;
              x = m
            | _ -> false)
          else (
            incr stamp;
            Util.Heap.push h v;
            reference := S.add (v, !stamp) !reference;
            Util.Heap.length h = S.cardinal !reference))
        ops)

(* The serve protocol rides on Util.Json, and the daemon's bit-exactness
   contract rides on its float round-trip: print/parse must be the
   identity on every finite double and on arbitrary (escaped) strings. *)
let gen_json =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        return Util.Json.Null;
        map (fun b -> Util.Json.Bool b) bool;
        (* Finite doubles only: JSON has no NaN/inf (they print as null
           by design, breaking identity on purpose). *)
        map (fun f -> Util.Json.Num f)
          (oneof [ float; map float_of_int int; return 0.0; return (-0.0) ]);
        map (fun s -> Util.Json.Str s) string_printable;
        map (fun s -> Util.Json.Str s)
          (string_size ~gen:(map Char.chr (int_range 1 255)) (int_range 0 20));
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then leaf
      else
        oneof
          [
            leaf;
            map (fun vs -> Util.Json.Arr vs)
              (list_size (int_range 0 4) (self (n / 2)));
            map (fun kvs -> Util.Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair string_printable (self (n / 2))));
          ])

let rec json_has_nonfinite = function
  | Util.Json.Num f -> Float.is_nan f || Float.abs f = Float.infinity
  | Util.Json.Arr vs -> List.exists json_has_nonfinite vs
  | Util.Json.Obj kvs -> List.exists (fun (_, v) -> json_has_nonfinite v) kvs
  | _ -> false

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"json parse (to_string v) = v" ~count:500 gen_json
    (fun v ->
      QCheck2.assume (not (json_has_nonfinite v));
      match Util.Json.parse (Util.Json.to_string v) with
      | Ok v' -> v' = v
      | Error _ -> false)

let prop_json_pretty_agrees =
  QCheck2.Test.make ~name:"json pretty printer parses to the same value"
    ~count:200 gen_json (fun v ->
      QCheck2.assume (not (json_has_nonfinite v));
      Util.Json.parse (Util.Json.to_string_pretty v) = Ok v)

let prop_json_trailing_garbage =
  QCheck2.Test.make ~name:"json rejects trailing garbage" ~count:200 gen_json
    (fun v ->
      match Util.Json.parse (Util.Json.to_string v ^ " x") with
      | Error _ -> true
      | Ok _ -> false)

let prop_json_depth_cap =
  QCheck2.Test.make ~name:"json depth cap rejects deep nesting"
    QCheck2.Gen.(int_range 70 200)
    (fun depth ->
      let s = String.make depth '[' ^ String.make depth ']' in
      match Util.Json.parse s with Error _ -> true | Ok _ -> false)

(* ----------------------------------------------------------- Cache *)

let test_cache_basic () =
  let c = Util.Cache.create ~shards:1 ~capacity:3 () in
  check "empty" 0 (Util.Cache.length c);
  check "capacity" 3 (Util.Cache.capacity c);
  check "shards" 1 (Util.Cache.shards c);
  checkb "miss" true (Util.Cache.find c "a" = None);
  check "no eviction" 0 (Util.Cache.add c "a" 1);
  checkb "hit" true (Util.Cache.find c "a" = Some 1);
  checkb "mem" true (Util.Cache.mem c "a");
  checkb "mem miss" false (Util.Cache.mem c "zz");
  check "replace keeps size" 0 (Util.Cache.add c "a" 2);
  checkb "replaced" true (Util.Cache.find c "a" = Some 2);
  check "one entry" 1 (Util.Cache.length c)

(* Single shard = exact LRU: the least recently touched key is the one
   evicted, and a find refreshes recency. *)
let test_cache_lru_order () =
  let c = Util.Cache.create ~shards:1 ~capacity:3 () in
  ignore (Util.Cache.add c "a" 1);
  ignore (Util.Cache.add c "b" 2);
  ignore (Util.Cache.add c "c" 3);
  ignore (Util.Cache.find c "a");
  (* recency now a, c, b *)
  check "evicts one" 1 (Util.Cache.add c "d" 4);
  checkb "b evicted" false (Util.Cache.mem c "b");
  checkb "a kept" true (Util.Cache.mem c "a");
  checkb "c kept" true (Util.Cache.mem c "c");
  checkb "d present" true (Util.Cache.mem c "d")

let test_cache_counters () =
  let c = Util.Cache.create ~shards:1 ~capacity:2 () in
  ignore (Util.Cache.find c "a");
  ignore (Util.Cache.add c "a" 1);
  ignore (Util.Cache.find c "a");
  ignore (Util.Cache.add c "b" 2);
  ignore (Util.Cache.add c "c" 3);
  let s = Util.Cache.stats c in
  check "hits" 1 s.Util.Cache.hits;
  check "misses" 1 s.Util.Cache.misses;
  check "evictions" 1 s.Util.Cache.evictions;
  check "entries" 2 s.Util.Cache.entries;
  Util.Cache.clear c;
  check "cleared" 0 (Util.Cache.length c);
  let s' = Util.Cache.stats c in
  check "counters survive clear" 1 s'.Util.Cache.evictions;
  (* shard_stats totals agree with stats *)
  let per = Util.Cache.shard_stats c in
  check "shard stats rows" (Util.Cache.shards c) (Array.length per);
  check "shard hits sum" s'.Util.Cache.hits
    (Array.fold_left (fun acc x -> acc + x.Util.Cache.hits) 0 per)

let test_cache_invalid () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Cache.create: capacity must be >= 1") (fun () ->
      ignore (Util.Cache.create ~capacity:0 ()))

let test_cache_shard_rounding () =
  (* shards rounds down to a power of two and clamps to capacity *)
  check "clamped" 2 (Util.Cache.shards (Util.Cache.create ~shards:16 ~capacity:2 ()));
  check "rounded" 4 (Util.Cache.shards (Util.Cache.create ~shards:7 ~capacity:100 ()));
  check "capacity kept" 100
    (Util.Cache.capacity (Util.Cache.create ~shards:7 ~capacity:100 ()))

(* Exact-LRU property: a single-shard cache behaves like a reference
   model (association list in recency order) over random op streams. *)
let prop_cache_matches_reference =
  let open QCheck2 in
  let gen_ops =
    Gen.(list_size (int_range 0 200)
           (pair (int_range 0 1) (int_range 0 12)))
  in
  Test.make ~name:"cache single shard = reference LRU" ~count:200 gen_ops
    (fun ops ->
      let cap = 4 in
      let c = Util.Cache.create ~shards:1 ~capacity:cap () in
      (* model: (key, value) list, head = most recent *)
      let model = ref [] in
      List.for_all
        (fun (op, k) ->
          let key = string_of_int k in
          if op = 0 then begin
            let expected = List.assoc_opt key !model in
            (match expected with
            | Some _ ->
              model :=
                (key, Option.get expected)
                :: List.remove_assoc key !model
            | None -> ());
            Util.Cache.find c key = expected
          end
          else begin
            let evicted = Util.Cache.add c key k in
            model := (key, k) :: List.remove_assoc key !model;
            let over = List.length !model > cap in
            if over then
              model := List.filteri (fun i _ -> i < cap) !model;
            evicted = (if over then 1 else 0)
            && Util.Cache.length c = List.length !model
          end)
        ops)

(* Domains hammer: concurrent adds and finds never corrupt the
   structure — the capacity bound holds, every find returns the value
   that was stored for that key, and counters total coherently. *)
let test_cache_domains () =
  let cap = 64 in
  let c = Util.Cache.create ~capacity:cap () in
  let per_domain = 5_000 in
  let worker seed () =
    let prng = Util.Prng.create ~seed:(Int64.of_int seed) in
    for _ = 1 to per_domain do
      let k = Util.Prng.int prng ~bound:200 in
      let key = string_of_int k in
      if Util.Prng.int prng ~bound:2 = 0 then ignore (Util.Cache.add c key k)
      else
        match Util.Cache.find c key with
        | None -> ()
        | Some v -> if v <> k then failwith "cache returned wrong value"
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join domains;
  checkb "within capacity" true (Util.Cache.length c <= cap);
  let s = Util.Cache.stats c in
  checkb "entries consistent" true (s.Util.Cache.entries = Util.Cache.length c);
  checkb "counted finds" true (s.Util.Cache.hits + s.Util.Cache.misses > 0)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ceil_div; prop_divisors; prop_partition_cover; prop_prng_distinct;
      prop_quantile_reference; prop_quantile_bounded_monotone;
      prop_heap_pop_sorted; prop_heap_interleaved; prop_json_roundtrip;
      prop_json_pretty_agrees; prop_json_trailing_garbage;
      prop_json_depth_cap; prop_cache_matches_reference ]

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "int_in_range" `Quick test_prng_range;
          Alcotest.test_case "float unit interval" `Quick test_prng_float_unit_interval;
          Alcotest.test_case "choose" `Quick test_prng_choose;
          Alcotest.test_case "choose empty" `Quick test_prng_choose_empty;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "distinct ints" `Quick test_prng_distinct_ints;
          Alcotest.test_case "distinct full range" `Quick test_prng_distinct_full_range;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
        ] );
      ( "int_math",
        [
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "ceil_div invalid" `Quick test_ceil_div_invalid;
          Alcotest.test_case "round_up_to" `Quick test_round_up_to;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "isqrt" `Quick test_isqrt;
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "closest_divisor" `Quick test_closest_divisor;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "compositions" `Quick test_compositions;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "argmin/argmax" `Quick test_stats_arg;
          Alcotest.test_case "empty raises" `Quick test_stats_empty;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "quantile invalid" `Quick
            test_stats_quantile_invalid;
        ] );
      ( "partition",
        [
          Alcotest.test_case "structure" `Quick test_partition_structure;
          Alcotest.test_case "optimality" `Quick test_partition_optimality;
          Alcotest.test_case "singletons" `Quick test_partition_singletons;
          Alcotest.test_case "invalid" `Quick test_partition_invalid;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "markdown" `Quick test_table_markdown;
          Alcotest.test_case "cell mismatch" `Quick test_table_cell_mismatch;
        ] );
      ("units", [ Alcotest.test_case "conversions" `Quick test_units ]);
      ( "cache",
        [
          Alcotest.test_case "basic" `Quick test_cache_basic;
          Alcotest.test_case "lru order" `Quick test_cache_lru_order;
          Alcotest.test_case "counters" `Quick test_cache_counters;
          Alcotest.test_case "invalid capacity" `Quick test_cache_invalid;
          Alcotest.test_case "shard rounding" `Quick test_cache_shard_rounding;
          Alcotest.test_case "domains hammer" `Quick test_cache_domains;
        ] );
      ("properties", properties);
    ]
