(* Tests for the differential validation subsystem: exact ideal-config
   agreement, case serialisation, corpus replay, counterexample
   shrinking and the parallel sweep driver. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Under [dune runtest] the cwd is the test directory; under a bare
   [dune exec] from the repo root it is not. *)
let corpus_path =
  if Sys.file_exists "corpus/validate.corpus" then "corpus/validate.corpus"
  else "test/corpus/validate.corpus"

(* ---------------------------------------------------- ideal exactness *)

let test_ideal_exact_zoo () =
  (* Acceptance bar of the subsystem: under the ideal simulator
     configuration, latency and off-chip access counts agree with the
     analytical model on Segmented, SegmentedRR and Hybrid for every
     network in the zoo. *)
  List.iter
    (fun m ->
      List.iter
        (fun arch ->
          let case = Validate.Case.v m Platform.Board.zcu102 arch in
          let ctx = Validate.Invariant.context case in
          match Validate.Invariant.ideal_exact.Validate.Invariant.check ctx with
          | Validate.Invariant.Pass -> ()
          | Validate.Invariant.Skip r ->
            Alcotest.failf "%s %s: unexpected skip: %s" m.Cnn.Model.name
              (Validate.Case.arch_to_string arch)
              r
          | Validate.Invariant.Fail msg ->
            Alcotest.failf "%s %s: %s" m.Cnn.Model.name
              (Validate.Case.arch_to_string arch)
              msg)
        [
          Validate.Case.Segmented 4;
          Validate.Case.Segmented_rr 4;
          Validate.Case.Hybrid 4;
        ])
    (Cnn.Model_zoo.extended ())

(* ------------------------------------------------- case serialisation *)

let test_case_round_trip_generated () =
  let rng = Util.Prng.create ~seed:5L in
  for i = 0 to 29 do
    let c = Validate.Gen.case rng ~index:i in
    match Validate.Case.of_string (Validate.Case.to_string c) with
    | Error e -> Alcotest.failf "case %d: %s" i e
    | Ok c' ->
      Alcotest.(check string) "label" c.Validate.Case.label c'.Validate.Case.label;
      checkb "arch" true (c.Validate.Case.arch = c'.Validate.Case.arch);
      checkb "board" true (c.Validate.Case.board = c'.Validate.Case.board);
      (* The replayed case must evaluate to bit-identical metrics. *)
      let m c =
        (Mccm.Evaluate.evaluate c.Validate.Case.model c.Validate.Case.board
           (Validate.Case.materialize c))
          .Mccm.Evaluate.metrics
      in
      checkb "identical metrics" true (m c = m c')
  done

let test_case_parse_errors () =
  List.iter
    (fun (label, text) ->
      match Validate.Case.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: expected a parse error" label)
    [
      ("no case header", "board ZC706\n");
      ("unknown board", "case x\nboard NoSuchBoard\narch segmented 2\n");
      ( "bad arch",
        "case x\nboard ZC706\narch frobnicate 2\nmodel\ncnn A A\ninput \
         8x8x8\npw 8\npw 8\nendmodel\nendcase\n" );
    ]

(* --------------------------------------------------------- the corpus *)

let test_corpus_replay () =
  match Validate.Corpus.load corpus_path with
  | Error e -> Alcotest.failf "corpus unreadable: %s" e
  | Ok cases ->
    checkb "has sentinel cases" true (List.length cases >= 3);
    List.iter
      (fun c ->
        let v =
          Validate.Oracle.check ~suite:(Validate.Invariant.default_suite ()) c
        in
        if not (Validate.Oracle.ok v) then
          Alcotest.failf "corpus case %s regressed: %s" c.Validate.Case.label
            (Format.asprintf "%a" Validate.Oracle.pp v))
      cases

let test_corpus_cached_bit_identical () =
  (* Every corpus case must evaluate to [Stdlib.(=)]-identical metrics
     through a memoized session (twice, so the second request exercises
     the whole-architecture table), an unmemoized session, and the raw
     evaluator: the caches are semantically invisible on the pinned
     regression set too. *)
  match Validate.Corpus.load corpus_path with
  | Error e -> Alcotest.failf "corpus unreadable: %s" e
  | Ok cases ->
    List.iter
      (fun c ->
        let model = c.Validate.Case.model and board = c.Validate.Case.board in
        let archi = Validate.Case.materialize c in
        let cached = Mccm.Eval_session.create model board in
        let uncached = Mccm.Eval_session.create ~memoize:false model board in
        let reference = Mccm.Evaluate.metrics model board archi in
        List.iteri
          (fun i m ->
            if m <> reference then
              Alcotest.failf "case %s: cached path %d diverges"
                c.Validate.Case.label i)
          [
            Mccm.Eval_session.metrics cached archi;
            Mccm.Eval_session.metrics cached archi;
            Mccm.Eval_session.metrics uncached archi;
          ])
      cases

let test_corpus_round_trip () =
  match Validate.Corpus.load corpus_path with
  | Error e -> Alcotest.failf "corpus unreadable: %s" e
  | Ok cases -> (
    let text = Validate.Corpus.to_string cases in
    match Validate.Corpus.of_string text with
    | Error e -> Alcotest.failf "re-parse: %s" e
    | Ok cases' -> check "same cases" (List.length cases) (List.length cases'))

(* ----------------------------------------------------------- shrinking *)

let test_shrinker_minimizes () =
  (* A synthetic invariant that rejects any model with more than four
     layers: the shrinker must walk a large generated case down to at
     most six layers (truncation floors at 2, CE clamps can hold it
     above 4) while the same invariant keeps failing. *)
  let too_big =
    {
      Validate.Invariant.name = "too-big";
      check =
        (fun ctx ->
          let n =
            Cnn.Model.num_layers
              ctx.Validate.Invariant.case.Validate.Case.model
          in
          if n > 4 then Validate.Invariant.Fail (Printf.sprintf "%d layers" n)
          else Validate.Invariant.Pass);
    }
  in
  let suite = [ too_big ] in
  let rng = Util.Prng.create ~seed:11L in
  let case =
    (* Draw until the generator yields a model with plenty of layers. *)
    let rec find i =
      let c = Validate.Gen.case rng ~index:i in
      if Cnn.Model.num_layers c.Validate.Case.model >= 12 then c
      else find (i + 1)
    in
    find 0
  in
  let v = Validate.Oracle.check ~suite case in
  checkb "original fails" false (Validate.Oracle.ok v);
  match Validate.Shrink.minimize ~suite v with
  | None -> Alcotest.fail "expected a shrunk counterexample"
  | Some s ->
    let n = Cnn.Model.num_layers s.Validate.Oracle.case.Validate.Case.model in
    checkb
      (Printf.sprintf "shrunk to %d layers (<= 6)" n)
      true (n <= 6);
    checkb "still fails the same invariant" true
      (List.mem_assoc "too-big" s.Validate.Oracle.failures)

let test_shrinker_none_on_pass () =
  let suite = Validate.Invariant.default_suite () in
  let case =
    Validate.Case.v
      (Cnn.Model_zoo.mobilenet_v2 ())
      Platform.Board.zcu102 (Validate.Case.Segmented 4)
  in
  let v = Validate.Oracle.check ~suite case in
  checkb "passing case" true (Validate.Oracle.ok v);
  checkb "nothing to shrink" true (Validate.Shrink.minimize ~suite v = None)

(* --------------------------------------------------------------- sweep *)

let test_sweep_smoke () =
  let t =
    Validate.Sweep.run ~samples:40 ~seed:12345L ~domains:2 ~corpus:corpus_path
      ()
  in
  check "corpus replayed" 3 t.Validate.Sweep.corpus_cases;
  check "all samples evaluated" 40 t.Validate.Sweep.generated_cases;
  if not (Validate.Sweep.ok t) then
    Alcotest.failf "sweep failed: %s" (Format.asprintf "%a" Validate.Sweep.pp t)

let test_sweep_domain_count_invariant () =
  (* Cases are drawn before any domain spawns, so the verdicts and the
     error statistics are a function of the seed alone. *)
  let run domains = Validate.Sweep.run ~samples:24 ~seed:77L ~domains () in
  let a = run 1 and b = run 4 in
  check "same case count" a.Validate.Sweep.generated_cases
    b.Validate.Sweep.generated_cases;
  check "same failure count"
    (List.length a.Validate.Sweep.failures)
    (List.length b.Validate.Sweep.failures);
  checkb "identical worst errors" true
    (a.Validate.Sweep.worst = b.Validate.Sweep.worst)

let () =
  Alcotest.run "validate"
    [
      ( "ideal exactness",
        [ Alcotest.test_case "zoo x baselines" `Slow test_ideal_exact_zoo ] );
      ( "case",
        [
          Alcotest.test_case "round trip generated" `Quick
            test_case_round_trip_generated;
          Alcotest.test_case "parse errors" `Quick test_case_parse_errors;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "replay passes" `Quick test_corpus_replay;
          Alcotest.test_case "cached replay bit-identical" `Quick
            test_corpus_cached_bit_identical;
          Alcotest.test_case "round trip" `Quick test_corpus_round_trip;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimizes" `Quick test_shrinker_minimizes;
          Alcotest.test_case "none on pass" `Quick test_shrinker_none_on_pass;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "smoke" `Slow test_sweep_smoke;
          Alcotest.test_case "domain-count invariant" `Quick
            test_sweep_domain_count_invariant;
        ] );
    ]
